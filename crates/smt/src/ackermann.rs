//! Ackermannization: elimination of uninterpreted function applications.
//!
//! Every application `f(args…)` is replaced by a fresh variable, and for
//! each pair of applications of the same function a functional-consistency
//! constraint `args₁ = args₂ ⇒ res₁ = res₂` is added. This is sound and
//! complete for quantifier-free formulas and lets the bit-blaster stay
//! purely propositional.

use crate::term::{Ctx, FuncId, Op, TermId};
use std::collections::HashMap;

/// Result of Ackermannizing a set of assertions.
#[derive(Debug)]
pub struct Ackermannized {
    /// The rewritten assertions (applications replaced by variables).
    pub assertions: Vec<TermId>,
    /// The added functional-consistency constraints.
    pub constraints: Vec<TermId>,
    /// Map from each original application term to its replacement variable.
    pub app_vars: Vec<(TermId, TermId)>,
}

/// Rewrites `assertions` so they contain no `Apply` nodes.
pub fn ackermannize(ctx: &Ctx, assertions: &[TermId]) -> Ackermannized {
    let mut memo: HashMap<TermId, TermId> = HashMap::new();
    // (func, rewritten args) -> replacement var
    let mut table: HashMap<(FuncId, Vec<TermId>), TermId> = HashMap::new();
    // per func: list of (rewritten args, var)
    let mut by_func: HashMap<FuncId, Vec<(Vec<TermId>, TermId)>> = HashMap::new();
    let mut app_vars = Vec::new();

    fn rewrite(
        ctx: &Ctx,
        t: TermId,
        memo: &mut HashMap<TermId, TermId>,
        table: &mut HashMap<(FuncId, Vec<TermId>), TermId>,
        by_func: &mut HashMap<FuncId, Vec<(Vec<TermId>, TermId)>>,
        app_vars: &mut Vec<(TermId, TermId)>,
    ) -> TermId {
        if let Some(&r) = memo.get(&t) {
            return r;
        }
        let op = ctx.op(t);
        let args = ctx.args(t);
        let new_args: Vec<TermId> = args
            .iter()
            .map(|&a| rewrite(ctx, a, memo, table, by_func, app_vars))
            .collect();
        let r = match op {
            Op::Apply(f) => {
                let key = (f, new_args.clone());
                if let Some(&v) = table.get(&key) {
                    v
                } else {
                    let idx = by_func.get(&f).map_or(0, |v| v.len());
                    let name = format!("{}!{}", ctx.func_name(f), idx);
                    let v = ctx.var(&name, ctx.func_ret_sort(f));
                    table.insert(key, v);
                    by_func.entry(f).or_default().push((new_args, v));
                    app_vars.push((t, v));
                    v
                }
            }
            Op::Var(_) => t,
            _ => {
                if new_args == args {
                    t
                } else {
                    ctx.rebuild(op, &new_args)
                }
            }
        };
        memo.insert(t, r);
        r
    }

    let rewritten: Vec<TermId> = assertions
        .iter()
        .map(|&t| rewrite(ctx, t, &mut memo, &mut table, &mut by_func, &mut app_vars))
        .collect();

    let mut constraints = Vec::new();
    for apps in by_func.values() {
        for i in 0..apps.len() {
            for j in (i + 1)..apps.len() {
                let (args_i, var_i) = &apps[i];
                let (args_j, var_j) = &apps[j];
                let eqs: Vec<TermId> = args_i
                    .iter()
                    .zip(args_j)
                    .map(|(&a, &b)| ctx.eq(a, b))
                    .collect();
                let all_eq = ctx.and_many(&eqs);
                let res_eq = ctx.eq(*var_i, *var_j);
                constraints.push(ctx.implies(all_eq, res_eq));
            }
        }
    }

    Ackermannized {
        assertions: rewritten,
        constraints,
        app_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn removes_applications() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let assertion = ctx.ne(fx, fy);
        let ack = ackermannize(&ctx, &[assertion]);
        assert_eq!(ack.app_vars.len(), 2);
        assert_eq!(ack.constraints.len(), 1);
        // Rewritten assertion must not contain Apply.
        fn has_apply(ctx: &Ctx, t: TermId) -> bool {
            matches!(ctx.op(t), Op::Apply(_)) || ctx.args(t).iter().any(|&a| has_apply(ctx, a))
        }
        assert!(!has_apply(&ctx, ack.assertions[0]));
        for &c in &ack.constraints {
            assert!(!has_apply(&ctx, c));
        }
    }

    #[test]
    fn identical_applications_share_a_var() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let fx1 = ctx.apply(f, &[x]);
        let fx2 = ctx.apply(f, &[x]);
        assert_eq!(fx1, fx2); // hash-consed
        let ack = ackermannize(&ctx, &[ctx.eq(fx1, fx2)]);
        assert_eq!(ack.app_vars.len(), 0); // folded away by eq(x, x) = true
    }

    #[test]
    fn nested_applications() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let ffx = ctx.apply(f, &[ctx.apply(f, &[x])]);
        let assertion = ctx.eq(ffx, x);
        let ack = ackermannize(&ctx, &[assertion]);
        assert_eq!(ack.app_vars.len(), 2);
        assert_eq!(ack.constraints.len(), 1);
    }
}

//! Ackermannization: elimination of uninterpreted function applications.
//!
//! Every application `f(args…)` is replaced by a fresh variable, and for
//! each pair of applications of the same function a functional-consistency
//! constraint `args₁ = args₂ ⇒ res₁ = res₂` is added. This is sound and
//! complete for quantifier-free formulas and lets the bit-blaster stay
//! purely propositional.

use crate::term::{Ctx, FuncId, Op, TermId};
use std::collections::HashMap;

/// Result of Ackermannizing a set of assertions.
#[derive(Debug)]
pub struct Ackermannized {
    /// The rewritten assertions (applications replaced by variables).
    pub assertions: Vec<TermId>,
    /// The added functional-consistency constraints.
    pub constraints: Vec<TermId>,
    /// Map from each original application term to its replacement variable.
    pub app_vars: Vec<(TermId, TermId)>,
}

/// Stateful Ackermannization for incremental solving: the application
/// table persists across [`rewrite`](Self::rewrite) calls, so assertions
/// pushed one at a time share replacement variables with everything
/// rewritten before, and only the consistency constraints pairing *new*
/// applications against old ones are emitted — each exactly once.
#[derive(Debug, Default)]
pub struct Ackermannizer {
    memo: HashMap<TermId, TermId>,
    /// (func, rewritten args) -> replacement var
    table: HashMap<(FuncId, Vec<TermId>), TermId>,
    /// per func: list of (rewritten args, var)
    by_func: HashMap<FuncId, Vec<(Vec<TermId>, TermId)>>,
    app_vars: Vec<(TermId, TermId)>,
}

impl Ackermannizer {
    /// Creates an empty rewriter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Map from each original application term to its replacement
    /// variable, across every `rewrite` so far.
    pub fn app_vars(&self) -> &[(TermId, TermId)] {
        &self.app_vars
    }

    /// Rewrites `t` to contain no `Apply` nodes. Functional-consistency
    /// constraints for newly seen applications (paired against every
    /// previously seen application of the same function) are appended to
    /// `constraints`.
    pub fn rewrite(&mut self, ctx: &Ctx, t: TermId, constraints: &mut Vec<TermId>) -> TermId {
        if let Some(&r) = self.memo.get(&t) {
            return r;
        }
        let op = ctx.op(t);
        let args = ctx.args(t);
        let new_args: Vec<TermId> = args
            .iter()
            .map(|&a| self.rewrite(ctx, a, constraints))
            .collect();
        let r = match op {
            Op::Apply(f) => {
                let key = (f, new_args.clone());
                if let Some(&v) = self.table.get(&key) {
                    v
                } else {
                    let prior = self.by_func.entry(f).or_default();
                    let name = format!("{}!{}", ctx.func_name(f), prior.len());
                    let v = ctx.var(&name, ctx.func_ret_sort(f));
                    for (args_i, var_i) in prior.iter() {
                        let eqs: Vec<TermId> = args_i
                            .iter()
                            .zip(&new_args)
                            .map(|(&a, &b)| ctx.eq(a, b))
                            .collect();
                        let all_eq = ctx.and_many(&eqs);
                        let res_eq = ctx.eq(*var_i, v);
                        constraints.push(ctx.implies(all_eq, res_eq));
                    }
                    prior.push((new_args, v));
                    self.table.insert(key, v);
                    self.app_vars.push((t, v));
                    v
                }
            }
            Op::Var(_) => t,
            _ => {
                if new_args == args {
                    t
                } else {
                    ctx.rebuild(op, &new_args)
                }
            }
        };
        self.memo.insert(t, r);
        r
    }
}

/// Rewrites `assertions` so they contain no `Apply` nodes.
pub fn ackermannize(ctx: &Ctx, assertions: &[TermId]) -> Ackermannized {
    let mut ack = Ackermannizer::new();
    let mut constraints = Vec::new();
    let rewritten: Vec<TermId> = assertions
        .iter()
        .map(|&t| ack.rewrite(ctx, t, &mut constraints))
        .collect();
    Ackermannized {
        assertions: rewritten,
        constraints,
        app_vars: ack.app_vars,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn removes_applications() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let assertion = ctx.ne(fx, fy);
        let ack = ackermannize(&ctx, &[assertion]);
        assert_eq!(ack.app_vars.len(), 2);
        assert_eq!(ack.constraints.len(), 1);
        // Rewritten assertion must not contain Apply.
        fn has_apply(ctx: &Ctx, t: TermId) -> bool {
            matches!(ctx.op(t), Op::Apply(_)) || ctx.args(t).iter().any(|&a| has_apply(ctx, a))
        }
        assert!(!has_apply(&ctx, ack.assertions[0]));
        for &c in &ack.constraints {
            assert!(!has_apply(&ctx, c));
        }
    }

    #[test]
    fn identical_applications_share_a_var() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let fx1 = ctx.apply(f, &[x]);
        let fx2 = ctx.apply(f, &[x]);
        assert_eq!(fx1, fx2); // hash-consed
        let ack = ackermannize(&ctx, &[ctx.eq(fx1, fx2)]);
        assert_eq!(ack.app_vars.len(), 0); // folded away by eq(x, x) = true
    }

    #[test]
    fn nested_applications() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let ffx = ctx.apply(f, &[ctx.apply(f, &[x])]);
        let assertion = ctx.eq(ffx, x);
        let ack = ackermannize(&ctx, &[assertion]);
        assert_eq!(ack.app_vars.len(), 2);
        assert_eq!(ack.constraints.len(), 1);
    }
}

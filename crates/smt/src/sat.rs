//! A CDCL SAT solver with two-watched literals, first-UIP clause learning,
//! VSIDS branching, phase saving, Luby restarts, and learned-clause database
//! reduction.
//!
//! This is the decision engine under the bit-blaster. It deliberately
//! supports *resource budgets* (conflicts, wall-clock time, learned-literal
//! memory) because the Alive2 evaluation (Figures 6–8 of the paper) sweeps
//! solver timeouts and reports timeout/out-of-memory outcomes as first-class
//! results.

use std::time::Instant;

/// A propositional variable, numbered from zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SatVar(pub u32);

/// A literal: a variable with a sign. Even codes are positive.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// Builds a literal from a variable and sign (`true` = positive).
    pub fn new(var: SatVar, positive: bool) -> Lit {
        Lit(var.0 << 1 | (!positive as u32))
    }

    /// The underlying variable.
    pub fn var(self) -> SatVar {
        SatVar(self.0 >> 1)
    }

    /// True if the literal is positive.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// The negation of the literal.
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

/// Ternary assignment value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum LBool {
    True,
    False,
    Undef,
}

/// The outcome of a satisfiability check.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SatOutcome {
    /// A satisfying assignment was found.
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict or time budget was exhausted.
    TimedOut,
    /// The learned-clause memory budget was exhausted.
    OutOfMemory,
}

/// Resource budget for one `solve` call.
#[derive(Clone, Copy, Debug)]
pub struct Budget {
    /// Maximum number of conflicts before giving up (`u64::MAX` = unlimited).
    pub max_conflicts: u64,
    /// Wall-clock limit in milliseconds (`u64::MAX` = unlimited).
    pub max_millis: u64,
    /// Maximum total literals in learned clauses before reporting
    /// out-of-memory (`usize::MAX` = unlimited).
    pub max_learned_lits: usize,
    /// Absolute wall-clock deadline (`None` = unlimited). Unlike
    /// `max_millis`, which is relative to each `solve` call, the deadline
    /// is shared by every query of one validation job — the engine's
    /// per-job cap.
    pub deadline: Option<Instant>,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            max_conflicts: u64::MAX,
            max_millis: u64::MAX,
            max_learned_lits: usize::MAX,
            deadline: None,
        }
    }
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// A budget limited by wall-clock milliseconds.
    pub fn with_millis(ms: u64) -> Self {
        Budget {
            max_millis: ms,
            ..Self::default()
        }
    }

    /// This budget further capped by an absolute deadline.
    pub fn with_deadline(self, deadline: Option<Instant>) -> Self {
        Budget { deadline, ..self }
    }

    /// True once the absolute deadline (if any) has passed.
    pub fn deadline_passed(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }
}

/// A plain CNF formula: a variable count and a list of clauses.
///
/// [`SatSolver::add_clause`] simplifies eagerly (level-0 subsumption,
/// satisfied-clause dropping), which is lossy: the original clause list
/// cannot be recovered from a solver. The bit-blaster therefore emits
/// into a `Cnf` first, so the query cache can preprocess, canonicalize,
/// and fingerprint the exact formula before any solver ever sees it.
#[derive(Clone, Debug, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// An empty formula.
    pub fn new() -> Self {
        Cnf::default()
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Number of variables allocated.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Appends a clause verbatim (no simplification).
    pub fn add_clause(&mut self, lits: &[Lit]) {
        self.clauses.push(lits.to_vec());
    }

    /// The clause list.
    pub fn clauses(&self) -> &[Vec<Lit>] {
        &self.clauses
    }

    /// Builds a fresh [`SatSolver`] holding this formula.
    pub fn to_solver(&self) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..self.num_vars {
            s.new_var();
        }
        for c in &self.clauses {
            s.add_clause(c);
        }
        s
    }
}

#[derive(Clone)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    deleted: bool,
    activity: f64,
    /// Literal-block distance (glue): the number of distinct decision
    /// levels in the clause when it was learned. Low-LBD clauses encode
    /// tight cross-level dependencies and are kept through database
    /// reductions (Glucose's heuristic); original clauses carry 0.
    lbd: u32,
}

type ClauseRef = usize;

#[derive(Clone, Copy)]
struct Watcher {
    clause: ClauseRef,
    blocker: Lit,
}

/// Statistics from the most recent `solve` call.
#[derive(Clone, Copy, Debug, Default)]
pub struct SatStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

/// The CDCL solver.
///
/// # Examples
///
/// ```
/// use alive2_smt::sat::{Budget, Lit, SatOutcome, SatSolver};
///
/// let mut s = SatSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
/// s.add_clause(&[Lit::new(a, false)]);
/// assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Sat);
/// assert_eq!(s.value(b), Some(true));
/// ```
pub struct SatSolver {
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watcher>>,
    assigns: Vec<LBool>,
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    cla_inc: f64,
    order: Vec<SatVar>,
    order_pos: Vec<usize>,
    seen: Vec<bool>,
    ok: bool,
    learned_lits: usize,
    stats: SatStats,
    /// Failed-assumption core from the most recent
    /// [`solve_assuming`](Self::solve_assuming) that returned `Unsat`
    /// because of its assumptions. Empty when the formula itself is
    /// unsatisfiable (no assumptions needed).
    failed: Vec<Lit>,
}

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SatSolver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SatSolver {{ vars: {}, clauses: {} }}",
            self.assigns.len(),
            self.clauses.len()
        )
    }
}

impl SatSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assigns: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            cla_inc: 1.0,
            order: Vec::new(),
            order_pos: Vec::new(),
            seen: Vec::new(),
            ok: true,
            learned_lits: 0,
            stats: SatStats::default(),
            failed: Vec::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assigns.len()
    }

    /// Number of clauses (including learned, excluding deleted).
    pub fn num_clauses(&self) -> usize {
        self.clauses.iter().filter(|c| !c.deleted).count()
    }

    /// Number of live learned clauses currently in the database.
    pub fn num_learnts(&self) -> usize {
        self.clauses
            .iter()
            .filter(|c| c.learnt && !c.deleted)
            .count()
    }

    /// The failed-assumption core of the most recent
    /// [`solve_assuming`](Self::solve_assuming) call that returned
    /// `Unsat` *because of its assumptions*: a subset of the assumption
    /// literals whose conjunction already contradicts the clause
    /// database. Empty when the formula is unsatisfiable on its own.
    pub fn failed_assumptions(&self) -> &[Lit] {
        &self.failed
    }

    /// Resets every saved phase to the all-false default, biasing the
    /// next solve toward minimal (mostly-zero) models. Learned clauses,
    /// activities and the clause database are untouched. Callers that
    /// consume models structurally — CEGQI's candidate step, where
    /// regular candidates converge in far fewer refinements than
    /// arbitrary ones — want this between incremental solves; plain
    /// sat/unsat consumers should keep the saved phases.
    pub fn reset_phases(&mut self) {
        for p in &mut self.phase {
            *p = false;
        }
    }

    /// Statistics from the most recent solve.
    pub fn stats(&self) -> SatStats {
        self.stats
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> SatVar {
        let v = SatVar(self.assigns.len() as u32);
        self.assigns.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.seen.push(false);
        self.order_pos.push(self.order.len());
        self.order.push(v);
        self.heap_up(self.order.len() - 1);
        v
    }

    fn lit_value(&self, l: Lit) -> LBool {
        match self.assigns[l.var().0 as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if l.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    /// The value of a variable in the current (final) assignment, if set.
    pub fn value(&self, v: SatVar) -> Option<bool> {
        match self.assigns[v.0 as usize] {
            LBool::True => Some(true),
            LBool::False => Some(false),
            LBool::Undef => None,
        }
    }

    /// The full assignment vector after a `Sat` outcome, indexed by
    /// variable number. Variables the search never touched stay `None`:
    /// any value satisfies the formula for them (don't-cares).
    pub fn assignment(&self) -> Vec<Option<bool>> {
        (0..self.num_vars())
            .map(|i| self.value(SatVar(i as u32)))
            .collect()
    }

    /// Adds a clause. Returns `false` if the solver is already in an
    /// unsatisfiable state.
    ///
    /// Tautologies are dropped and duplicate literals removed. May be
    /// called between `solve` calls: any leftover search assignment is
    /// unwound to level 0 first (which discards the previous model — the
    /// incremental layer extracts models before pushing new clauses).
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort();
        sorted.dedup();
        for &l in &sorted {
            match self.lit_value(l) {
                LBool::True => return true, // satisfied at level 0
                LBool::False => continue,   // falsified at level 0: drop
                LBool::Undef => {}
            }
            if c.contains(&l.negate()) {
                return true; // tautology
            }
            c.push(l);
        }
        match c.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                self.attach_clause(c, false, 0);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cref = self.clauses.len();
        if learnt {
            self.learned_lits += lits.len();
        }
        let w0 = lits[0];
        let w1 = lits[1];
        self.clauses.push(Clause {
            lits,
            learnt,
            deleted: false,
            activity: 0.0,
            lbd,
        });
        self.watches[w0.negate().code()].push(Watcher {
            clause: cref,
            blocker: w1,
        });
        self.watches[w1.negate().code()].push(Watcher {
            clause: cref,
            blocker: w0,
        });
        cref
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.lit_value(l), LBool::Undef);
        let v = l.var().0 as usize;
        self.assigns[v] = if l.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.phase[v] = l.is_positive();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let mut i = 0;
            let mut j = 0;
            let mut ws = std::mem::take(&mut self.watches[p.code()]);
            let mut conflict: Option<ClauseRef> = None;
            'outer: while i < ws.len() {
                let w = ws[i];
                i += 1;
                if self.lit_value(w.blocker) == LBool::True {
                    ws[j] = w;
                    j += 1;
                    continue;
                }
                let cref = w.clause;
                if self.clauses[cref].deleted {
                    continue;
                }
                // Make sure the false literal is at position 1.
                let false_lit = p.negate();
                if self.clauses[cref].lits[0] == false_lit {
                    self.clauses[cref].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[cref].lits[1], false_lit);
                let first = self.clauses[cref].lits[0];
                if first != w.blocker && self.lit_value(first) == LBool::True {
                    ws[j] = Watcher {
                        clause: cref,
                        blocker: first,
                    };
                    j += 1;
                    continue;
                }
                // Look for a new literal to watch.
                for k in 2..self.clauses[cref].lits.len() {
                    let lk = self.clauses[cref].lits[k];
                    if self.lit_value(lk) != LBool::False {
                        self.clauses[cref].lits.swap(1, k);
                        self.watches[lk.negate().code()].push(Watcher {
                            clause: cref,
                            blocker: first,
                        });
                        continue 'outer;
                    }
                }
                // Clause is unit or conflicting.
                ws[j] = Watcher {
                    clause: cref,
                    blocker: first,
                };
                j += 1;
                if self.lit_value(first) == LBool::False {
                    // Conflict: copy the rest of the watchers back.
                    while i < ws.len() {
                        ws[j] = ws[i];
                        j += 1;
                        i += 1;
                    }
                    conflict = Some(cref);
                } else {
                    self.enqueue(first, Some(cref));
                }
            }
            ws.truncate(j);
            self.watches[p.code()] = ws;
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_var(&mut self, v: SatVar) {
        let idx = v.0 as usize;
        self.activity[idx] += self.var_inc;
        if self.activity[idx] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        let pos = self.order_pos[idx];
        if pos != usize::MAX {
            self.heap_up(pos);
        }
    }

    fn bump_clause(&mut self, c: ClauseRef) {
        self.clauses[c].activity += self.cla_inc;
        if self.clauses[c].activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
    }

    // ---- activity order (binary max-heap keyed by activity) -------------

    fn heap_less(&self, a: SatVar, b: SatVar) -> bool {
        self.activity[a.0 as usize] > self.activity[b.0 as usize]
    }

    fn heap_up(&mut self, mut i: usize) {
        let v = self.order[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap_less(v, self.order[parent]) {
                self.order[i] = self.order[parent];
                self.order_pos[self.order[i].0 as usize] = i;
                i = parent;
            } else {
                break;
            }
        }
        self.order[i] = v;
        self.order_pos[v.0 as usize] = i;
    }

    fn heap_down(&mut self, mut i: usize) {
        let v = self.order[i];
        loop {
            let l = 2 * i + 1;
            if l >= self.order.len() {
                break;
            }
            let r = l + 1;
            let child = if r < self.order.len() && self.heap_less(self.order[r], self.order[l]) {
                r
            } else {
                l
            };
            if self.heap_less(self.order[child], v) {
                self.order[i] = self.order[child];
                self.order_pos[self.order[i].0 as usize] = i;
                i = child;
            } else {
                break;
            }
        }
        self.order[i] = v;
        self.order_pos[v.0 as usize] = i;
    }

    fn heap_pop(&mut self) -> Option<SatVar> {
        if self.order.is_empty() {
            return None;
        }
        let top = self.order[0];
        self.order_pos[top.0 as usize] = usize::MAX;
        let last = self.order.pop().unwrap();
        if !self.order.is_empty() {
            self.order[0] = last;
            self.order_pos[last.0 as usize] = 0;
            self.heap_down(0);
        }
        Some(top)
    }

    fn heap_insert(&mut self, v: SatVar) {
        if self.order_pos[v.0 as usize] != usize::MAX {
            return;
        }
        self.order_pos[v.0 as usize] = self.order.len();
        self.order.push(v);
        self.heap_up(self.order.len() - 1);
    }

    fn pick_branch(&mut self) -> Option<Lit> {
        while let Some(v) = self.heap_pop() {
            if self.assigns[v.0 as usize] == LBool::Undef {
                self.stats.decisions += 1;
                return Some(Lit::new(v, self.phase[v.0 as usize]));
            }
        }
        None
    }

    fn backtrack(&mut self, to_level: u32) {
        if self.decision_level() <= to_level {
            return;
        }
        let lim = self.trail_lim[to_level as usize];
        for i in (lim..self.trail.len()).rev() {
            let v = self.trail[i].var();
            self.assigns[v.0 as usize] = LBool::Undef;
            self.reason[v.0 as usize] = None;
            self.heap_insert(v);
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(to_level as usize);
        self.qhead = self.trail.len();
    }

    /// First-UIP conflict analysis; returns the learned clause (UIP literal
    /// first) and the backjump level.
    fn analyze(&mut self, conflict: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for UIP
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut cref = conflict;
        let mut index = self.trail.len();
        loop {
            self.bump_clause(cref);
            let start = if p.is_some() { 1 } else { 0 };
            // Clone needed literals to appease the borrow checker; clauses are short.
            let lits = self.clauses[cref].lits.clone();
            for &q in &lits[start..] {
                let v = q.var().0 as usize;
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    self.bump_var(q.var());
                    if self.level[v] == self.decision_level() {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Find next literal to look at.
            loop {
                index -= 1;
                let l = self.trail[index];
                if self.seen[l.var().0 as usize] {
                    p = Some(l);
                    break;
                }
            }
            let pv = p.unwrap().var().0 as usize;
            self.seen[pv] = false;
            counter -= 1;
            if counter == 0 {
                learnt[0] = p.unwrap().negate();
                break;
            }
            cref = self.reason[pv].expect("implied literal must have a reason");
        }
        // Simple clause minimization: drop literals implied by the rest.
        let mut minimized: Vec<Lit> = vec![learnt[0]];
        for &l in &learnt[1..] {
            let v = l.var().0 as usize;
            let redundant = match self.reason[v] {
                Some(r) => self.clauses[r].lits[1..]
                    .iter()
                    .all(|&q| self.seen[q.var().0 as usize] || self.level[q.var().0 as usize] == 0),
                None => false,
            };
            if !redundant {
                minimized.push(l);
            }
        }
        for &l in &learnt {
            self.seen[l.var().0 as usize] = false;
        }
        // Re-mark the kept ones were cleared above; recompute seen for safety.
        for &l in &minimized[1..] {
            self.seen[l.var().0 as usize] = false;
        }
        let back_level = minimized[1..]
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .max()
            .unwrap_or(0);
        // Move a literal of back_level to index 1 (watch invariant).
        if minimized.len() > 1 {
            let mi = minimized[1..]
                .iter()
                .enumerate()
                .max_by_key(|(_, l)| self.level[l.var().0 as usize])
                .map(|(i, _)| i + 1)
                .unwrap();
            minimized.swap(1, mi);
        }
        (minimized, back_level)
    }

    /// Glue-aware learned-clause reduction: binary and low-LBD ("glue")
    /// clauses are kept unconditionally, the rest are ranked worst-first
    /// by (high LBD, low activity) and the worst half deleted. Keeping
    /// glue clauses is what lets a long-lived incremental solver retain
    /// the valuable part of its database across many `solve` calls.
    fn reduce_db(&mut self) {
        let mut learnt_refs: Vec<ClauseRef> = (0..self.clauses.len())
            .filter(|&i| self.clauses[i].learnt && !self.clauses[i].deleted)
            .collect();
        learnt_refs.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a], &self.clauses[b]);
            cb.lbd
                .cmp(&ca.lbd)
                .then(ca.activity.partial_cmp(&cb.activity).unwrap())
        });
        let locked: std::collections::HashSet<ClauseRef> =
            self.reason.iter().flatten().copied().collect();
        let target = learnt_refs.len() / 2;
        let mut removed = 0;
        for &cref in &learnt_refs {
            if removed >= target {
                break;
            }
            let c = &self.clauses[cref];
            if locked.contains(&cref) || c.lits.len() <= 2 || c.lbd <= 2 {
                continue;
            }
            self.clauses[cref].deleted = true;
            self.learned_lits -= self.clauses[cref].lits.len();
            removed += 1;
        }
        for ws in &mut self.watches {
            ws.retain(|w| !self.clauses[w.clause].deleted);
        }
    }

    /// Literal-block distance of a clause under the current assignment:
    /// the number of distinct decision levels among its literals.
    fn compute_lbd(&self, lits: &[Lit]) -> u32 {
        let mut levels: Vec<u32> = lits
            .iter()
            .map(|l| self.level[l.var().0 as usize])
            .collect();
        levels.sort_unstable();
        levels.dedup();
        levels.len() as u32
    }

    fn delete_clause(&mut self, ci: ClauseRef) {
        if self.clauses[ci].learnt {
            self.learned_lits -= self.clauses[ci].lits.len();
        }
        self.clauses[ci].deleted = true;
    }

    /// Rebuilds every watch list from scratch. Only valid at level 0
    /// with all clause literals unassigned (the inprocessing invariant:
    /// satisfied clauses deleted, false literals stripped).
    fn rebuild_watches(&mut self) {
        for ws in &mut self.watches {
            ws.clear();
        }
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].deleted {
                continue;
            }
            debug_assert!(self.clauses[ci].lits.len() >= 2);
            let w0 = self.clauses[ci].lits[0];
            let w1 = self.clauses[ci].lits[1];
            self.watches[w0.negate().code()].push(Watcher {
                clause: ci,
                blocker: w1,
            });
            self.watches[w1.negate().code()].push(Watcher {
                clause: ci,
                blocker: w0,
            });
        }
    }

    /// One pass of level-0 clause simplification: drops satisfied
    /// clauses, strips false literals, and returns any clauses reduced
    /// to units (deleted here, to be re-enqueued by the caller).
    /// Returns `None` if a clause became empty (formula unsat).
    fn strip_level0(&mut self) -> Option<Vec<Lit>> {
        let mut units = Vec::new();
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].deleted {
                continue;
            }
            let mut satisfied = false;
            let mut kept: Vec<Lit> = Vec::with_capacity(self.clauses[ci].lits.len());
            for k in 0..self.clauses[ci].lits.len() {
                let l = self.clauses[ci].lits[k];
                match self.lit_value(l) {
                    LBool::True => {
                        satisfied = true;
                        break;
                    }
                    LBool::False => {}
                    LBool::Undef => kept.push(l),
                }
            }
            if satisfied {
                self.delete_clause(ci);
                continue;
            }
            match kept.len() {
                0 => return None,
                1 => {
                    units.push(kept[0]);
                    self.delete_clause(ci);
                }
                _ => {
                    if kept.len() < self.clauses[ci].lits.len() {
                        if self.clauses[ci].learnt {
                            self.learned_lits -= self.clauses[ci].lits.len() - kept.len();
                        }
                        self.clauses[ci].lits = kept;
                    }
                }
            }
        }
        Some(units)
    }

    /// Checks whether (sorted) `c` subsumes (sorted) `d` exactly
    /// (`Some(None)`), subsumes it modulo one flipped literal — the
    /// self-subsuming-resolution case, returning the literal to remove
    /// from `d` (`Some(Some(l))`) — or neither (`None`).
    fn subsumes(c: &[Lit], d: &[Lit]) -> Option<Option<Lit>> {
        let mut flip: Option<Lit> = None;
        let mut j = 0;
        for &lc in c {
            let vc = lc.var();
            loop {
                if j >= d.len() {
                    return None;
                }
                let ld = d[j];
                if ld.var() == vc {
                    if ld != lc {
                        if flip.is_some() {
                            return None;
                        }
                        flip = Some(ld);
                    }
                    j += 1;
                    break;
                } else if ld.var().0 < vc.0 {
                    j += 1;
                } else {
                    return None;
                }
            }
        }
        Some(flip)
    }

    /// Bounded subsumption and self-subsuming resolution over the live
    /// clause database. Clause literals must be sorted (the caller sorts
    /// once). Returns clauses strengthened down to units. `work` caps
    /// the total literal comparisons so a huge database cannot stall an
    /// incremental check.
    fn subsume_bounded(&mut self, work: &mut i64) -> Vec<Lit> {
        let mut units = Vec::new();
        let nlits = 2 * self.num_vars();
        let mut occ: Vec<Vec<ClauseRef>> = vec![Vec::new(); nlits];
        let mut live: Vec<ClauseRef> = Vec::new();
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].deleted {
                continue;
            }
            live.push(ci);
            for &l in &self.clauses[ci].lits {
                occ[l.code()].push(ci);
            }
        }
        // Small clauses first: they subsume the most.
        live.sort_by_key(|&ci| self.clauses[ci].lits.len());
        for &ci in &live {
            if *work <= 0 {
                break;
            }
            if self.clauses[ci].deleted || self.clauses[ci].lits.len() > 8 {
                continue;
            }
            let c = self.clauses[ci].lits.clone();
            // Candidates must share a variable with C; scanning every
            // occurrence list of C's literals (both polarities) covers
            // subsumption and the one-flip strengthening case.
            for &lc in &c {
                for code in [lc.code(), lc.negate().code()] {
                    for di in 0..occ[code].len() {
                        let dj = occ[code][di];
                        if dj == ci || self.clauses[dj].deleted {
                            continue;
                        }
                        if self.clauses[dj].lits.len() < c.len() {
                            continue;
                        }
                        *work -= self.clauses[dj].lits.len() as i64;
                        match Self::subsumes(&c, &self.clauses[dj].lits) {
                            Some(None) => {
                                // C ⊆ D: drop D. If a learnt clause
                                // subsumes an original one, promote it —
                                // reduce_db must never delete the only
                                // clause standing in for an original.
                                if !self.clauses[dj].learnt && self.clauses[ci].learnt {
                                    self.clauses[ci].learnt = false;
                                    self.learned_lits -= self.clauses[ci].lits.len();
                                }
                                self.delete_clause(dj);
                            }
                            Some(Some(flip)) => {
                                // Self-subsuming resolution: D loses the
                                // flipped literal.
                                if self.clauses[dj].learnt {
                                    self.learned_lits -= 1;
                                }
                                self.clauses[dj].lits.retain(|&l| l != flip);
                                if self.clauses[dj].lits.len() == 1 {
                                    units.push(self.clauses[dj].lits[0]);
                                    self.delete_clause(dj);
                                }
                            }
                            None => {}
                        }
                        if *work <= 0 {
                            return units;
                        }
                    }
                }
            }
        }
        units
    }

    /// Bounded inprocessing at level 0: unit propagation to fixpoint,
    /// satisfied-clause removal, false-literal stripping, then bounded
    /// subsumption and self-subsuming resolution. Safe to call between
    /// `solve` calls on a long-lived solver; all watch lists are rebuilt.
    ///
    /// Returns `false` if simplification proves the formula unsatisfiable
    /// (the solver is then permanently `Unsat`).
    pub fn simplify(&mut self) -> bool {
        if !self.ok {
            return false;
        }
        self.backtrack(0);
        // Level-0 reasons are never consulted again (conflict analysis
        // stops above level 0); clearing them unlocks their clauses.
        for i in 0..self.trail.len() {
            let v = self.trail[i].var();
            self.reason[v.0 as usize] = None;
        }
        let mut work: i64 = 2_000_000;
        // A strengthening round can create units, which enable more
        // stripping; iterate a few bounded rounds to a near-fixpoint.
        for round in 0..4 {
            if self.propagate().is_some() {
                self.ok = false;
                return false;
            }
            let Some(units) = self.strip_level0() else {
                self.ok = false;
                return false;
            };
            if !units.is_empty() {
                for l in units {
                    match self.lit_value(l) {
                        LBool::Undef => self.enqueue(l, None),
                        LBool::False => {
                            self.ok = false;
                            return false;
                        }
                        LBool::True => {}
                    }
                }
                self.rebuild_watches();
                continue; // propagate the new units before subsuming
            }
            if round > 0 || work <= 0 {
                break; // subsumption already ran and found no new units
            }
            for ci in 0..self.clauses.len() {
                if !self.clauses[ci].deleted {
                    self.clauses[ci].lits.sort_unstable();
                }
            }
            let sub_units = self.subsume_bounded(&mut work);
            self.rebuild_watches();
            if sub_units.is_empty() {
                break;
            }
            for l in sub_units {
                match self.lit_value(l) {
                    LBool::Undef => self.enqueue(l, None),
                    LBool::False => {
                        self.ok = false;
                        return false;
                    }
                    LBool::True => {}
                }
            }
        }
        self.rebuild_watches();
        self.qhead = 0; // re-propagate from scratch on the next solve
        true
    }

    /// The Luby restart sequence (1-indexed): 1 1 2 1 1 2 4 1 1 2 1 1 2 4 8…
    fn luby(i: u64) -> u64 {
        let mut x = i - 1;
        let mut size = 1u64;
        let mut seq = 0u32;
        while size < x + 1 {
            seq += 1;
            size = 2 * size + 1;
        }
        while size - 1 != x {
            size = (size - 1) >> 1;
            seq -= 1;
            x %= size;
        }
        1 << seq
    }

    /// Final-conflict analysis (MiniSat's `analyzeFinal`): `p` is an
    /// assumption literal found `False` while replaying assumptions.
    /// Walks the trail top-down from the implied literals, expanding
    /// reasons and collecting the decisions (all of which are assumption
    /// replays at that point) that force `¬p`. Returns the failed core:
    /// a subset of the assumption literals, including `p` itself.
    fn analyze_final(&mut self, p: Lit) -> Vec<Lit> {
        let mut core = vec![p];
        if self.decision_level() == 0 {
            return core;
        }
        let mut marked = vec![p.var()];
        self.seen[p.var().0 as usize] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let x = self.trail[i];
            let xv = x.var().0 as usize;
            if !self.seen[xv] {
                continue;
            }
            match self.reason[xv] {
                // A decision above level 0 during assumption replay is an
                // assumption literal, as it was assigned.
                None => core.push(x),
                Some(cref) => {
                    // lits[0] is the propagated literal; the rest are its
                    // antecedents.
                    for k in 1..self.clauses[cref].lits.len() {
                        let q = self.clauses[cref].lits[k];
                        let qv = q.var().0 as usize;
                        if !self.seen[qv] && self.level[qv] > 0 {
                            self.seen[qv] = true;
                            marked.push(q.var());
                        }
                    }
                }
            }
        }
        for v in marked {
            self.seen[v.0 as usize] = false;
        }
        core
    }

    /// Solves the current formula under the given budget.
    ///
    /// The solver is *incremental*: learned clauses, variable activities,
    /// and saved phases persist across calls, and more clauses may be
    /// added between calls. Each call starts by unwinding to level 0, so
    /// warm state is reused but never unsoundly.
    pub fn solve(&mut self, budget: Budget) -> SatOutcome {
        self.solve_assuming(&[], budget)
    }

    /// Solves under the given *assumption literals*: the formula is
    /// checked with every assumption temporarily forced true. Assumptions
    /// are replayed as pseudo-decisions at levels `1..=n`, below any
    /// search decisions — "level 0's edge" — so conflict-driven learning
    /// never burns them into the clause database and they are fully
    /// retracted when the call returns.
    ///
    /// On `Unsat` caused by the assumptions, [`failed_assumptions`]
    /// holds a failed core (a subset of `assumptions`) and the solver
    /// stays usable: `ok` is not poisoned, and later calls with other
    /// assumptions may well be `Sat`. On `Unsat` with an empty core the
    /// formula itself is unsatisfiable.
    ///
    /// [`failed_assumptions`]: Self::failed_assumptions
    pub fn solve_assuming(&mut self, assumptions: &[Lit], budget: Budget) -> SatOutcome {
        self.stats = SatStats::default();
        self.failed.clear();
        if !self.ok {
            return SatOutcome::Unsat;
        }
        if budget.deadline_passed() {
            return SatOutcome::TimedOut;
        }
        // Unwind any assignment left by a previous call (a model, or the
        // previous call's assumptions).
        self.backtrack(0);
        let start = Instant::now();
        let mut restart_num = 1u64;
        let mut conflicts_until_restart = 32 * Self::luby(restart_num);
        let mut max_learnts = (self.clauses.len() / 3).max(1000);
        let mut decisions = 0u64;
        loop {
            if let Some(conflict) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatOutcome::Unsat;
                }
                let (learnt, back_level) = self.analyze(conflict);
                self.backtrack(back_level);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let lbd = self.compute_lbd(&learnt);
                    let cref = self.attach_clause(learnt.clone(), true, lbd);
                    self.bump_clause(cref);
                    self.enqueue(learnt[0], Some(cref));
                }
                self.var_inc /= 0.95;
                self.cla_inc /= 0.999;
                if self.stats.conflicts >= budget.max_conflicts {
                    self.backtrack(0);
                    return SatOutcome::TimedOut;
                }
                if self.stats.conflicts % 256 == 0
                    && (start.elapsed().as_millis() as u64 >= budget.max_millis
                        || budget.deadline_passed())
                {
                    self.backtrack(0);
                    return SatOutcome::TimedOut;
                }
                if self.learned_lits > budget.max_learned_lits {
                    self.backtrack(0);
                    return SatOutcome::OutOfMemory;
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
            } else {
                if conflicts_until_restart == 0 {
                    self.stats.restarts += 1;
                    restart_num += 1;
                    conflicts_until_restart = 32 * Self::luby(restart_num);
                    self.backtrack(0);
                }
                let learnt_count = self
                    .clauses
                    .iter()
                    .filter(|c| c.learnt && !c.deleted)
                    .count();
                if learnt_count > max_learnts {
                    self.reduce_db();
                    max_learnts = max_learnts + max_learnts / 10;
                }
                // Replay assumptions as the bottom-most pseudo-decisions
                // (levels 1..=n). Restarts unwind them; this re-pushes
                // whatever is missing before any real branching happens.
                let mut propagate_pending = false;
                while (self.decision_level() as usize) < assumptions.len() {
                    let p = assumptions[self.decision_level() as usize];
                    match self.lit_value(p) {
                        LBool::True => {
                            // Already satisfied: open an empty level so
                            // level index and assumption index stay in
                            // sync for analyze_final.
                            self.trail_lim.push(self.trail.len());
                        }
                        LBool::False => {
                            self.failed = self.analyze_final(p);
                            self.backtrack(0);
                            return SatOutcome::Unsat;
                        }
                        LBool::Undef => {
                            self.trail_lim.push(self.trail.len());
                            self.enqueue(p, None);
                            propagate_pending = true;
                            break;
                        }
                    }
                }
                if propagate_pending {
                    continue;
                }
                // Conflict-gated checks alone leave a blind spot: a hot
                // conflict-light search (mass propagation over a nearly
                // satisfiable formula) would never observe its wall-clock
                // budget. Re-check it every 512 decisions so even such a
                // solve cooperatively reports Timeout instead of relying
                // on an external watchdog.
                decisions += 1;
                if decisions % 512 == 0
                    && (start.elapsed().as_millis() as u64 >= budget.max_millis
                        || budget.deadline_passed())
                {
                    self.backtrack(0);
                    return SatOutcome::TimedOut;
                }
                match self.pick_branch() {
                    None => return SatOutcome::Sat,
                    Some(l) => {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(l, None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut SatSolver, vars: &mut Vec<SatVar>, i: i32) -> Lit {
        let idx = i.unsigned_abs() as usize - 1;
        while vars.len() <= idx {
            vars.push(s.new_var());
        }
        Lit::new(vars[idx], i > 0)
    }

    fn solve_dimacs(clauses: &[&[i32]]) -> SatOutcome {
        let mut s = SatSolver::new();
        let mut vars = Vec::new();
        for c in clauses {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(&mut s, &mut vars, i)).collect();
            s.add_clause(&ls);
        }
        s.solve(Budget::unlimited())
    }

    #[test]
    fn trivial_sat_unsat() {
        assert_eq!(solve_dimacs(&[&[1]]), SatOutcome::Sat);
        assert_eq!(solve_dimacs(&[&[1], &[-1]]), SatOutcome::Unsat);
        assert_eq!(solve_dimacs(&[]), SatOutcome::Sat);
        assert_eq!(solve_dimacs(&[&[]]), SatOutcome::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        // 1, 1->2, 2->3, 3->-1 is unsat.
        assert_eq!(
            solve_dimacs(&[&[1], &[-1, 2], &[-2, 3], &[-3, -1]]),
            SatOutcome::Unsat
        );
        assert_eq!(solve_dimacs(&[&[1], &[-1, 2], &[-2, 3]]), SatOutcome::Sat);
    }

    #[test]
    fn model_is_returned() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, false), Lit::new(b, true)]);
        s.add_clause(&[Lit::new(a, true)]);
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
        assert_eq!(s.value(b), Some(true));
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p_{ij}: pigeon i in hole j; i in 0..3, j in 0..2.
        let mut s = SatSolver::new();
        let mut p = vec![];
        for _ in 0..6 {
            p.push(s.new_var());
        }
        let idx = |i: usize, j: usize| p[i * 2 + j];
        for i in 0..3 {
            s.add_clause(&[Lit::new(idx(i, 0), true), Lit::new(idx(i, 1), true)]);
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause(&[Lit::new(idx(i1, j), false), Lit::new(idx(i2, j), false)]);
                }
            }
        }
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Unsat);
    }

    #[test]
    fn agrees_with_brute_force_on_random_3sat() {
        // Deterministic xorshift RNG for reproducibility.
        let mut state = 0x243F6A88u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..60 {
            let n = 6;
            let m = 3 + (round % 20);
            let mut cls: Vec<Vec<i32>> = Vec::new();
            for _ in 0..m {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (rng() % n + 1) as i32;
                    let s = if rng() % 2 == 0 { 1 } else { -1 };
                    c.push(v * s);
                }
                cls.push(c);
            }
            // Brute force over 2^6 assignments.
            let mut brute_sat = false;
            'assign: for bits in 0..(1u32 << n) {
                for c in &cls {
                    let ok = c.iter().any(|&l| {
                        let v = l.unsigned_abs() - 1;
                        let val = bits >> v & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'assign;
                    }
                }
                brute_sat = true;
                break;
            }
            let refs: Vec<&[i32]> = cls.iter().map(|c| c.as_slice()).collect();
            let got = solve_dimacs(&refs);
            let expect = if brute_sat {
                SatOutcome::Sat
            } else {
                SatOutcome::Unsat
            };
            assert_eq!(got, expect, "round {round}: {cls:?}");
        }
    }

    #[test]
    fn conflict_budget_reports_timeout() {
        // A hard pigeonhole instance with a tiny conflict budget.
        let mut s = SatSolver::new();
        let n = 7; // pigeons
        let h = 6; // holes
        let mut p = vec![];
        for _ in 0..n * h {
            p.push(s.new_var());
        }
        let idx = |i: usize, j: usize| p[i * h + j];
        for i in 0..n {
            let c: Vec<Lit> = (0..h).map(|j| Lit::new(idx(i, j), true)).collect();
            s.add_clause(&c);
        }
        for j in 0..h {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause(&[Lit::new(idx(i1, j), false), Lit::new(idx(i2, j), false)]);
                }
            }
        }
        let out = s.solve(Budget {
            max_conflicts: 10,
            ..Budget::unlimited()
        });
        assert_eq!(out, SatOutcome::TimedOut);
    }

    #[test]
    fn conflict_free_search_still_observes_time_budget() {
        // 2000 free variables and no clauses: the search makes 2000
        // decisions and zero conflicts, so the conflict-gated budget
        // check never fires. The decision-gated check must still observe
        // an exhausted wall-clock budget (max_millis 0 is exhausted from
        // the first instant) instead of running to Sat.
        let mut s = SatSolver::new();
        for _ in 0..2000 {
            s.new_var();
        }
        let out = s.solve(Budget {
            max_millis: 0,
            ..Budget::unlimited()
        });
        assert_eq!(out, SatOutcome::TimedOut);
        // With a real budget the same formula is trivially Sat.
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Sat);
    }

    #[test]
    fn luby_sequence_prefix() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(SatSolver::luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn assumptions_restrict_without_committing() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, true), Lit::new(b, true)]);
        // Assuming ¬a forces b.
        let out = s.solve_assuming(&[Lit::new(a, false)], Budget::unlimited());
        assert_eq!(out, SatOutcome::Sat);
        assert_eq!(s.value(a), Some(false));
        assert_eq!(s.value(b), Some(true));
        // The assumption was not learned: a alone is still free.
        let out = s.solve_assuming(&[Lit::new(a, true)], Budget::unlimited());
        assert_eq!(out, SatOutcome::Sat);
        assert_eq!(s.value(a), Some(true));
    }

    #[test]
    fn failed_core_contains_only_assumption_literals() {
        // x1 ∧ (x1 → x2) with assumptions {x3, ¬x2, x4}: core must name
        // ¬x2 and nothing outside the assumption set.
        let mut s = SatSolver::new();
        let x1 = s.new_var();
        let x2 = s.new_var();
        let x3 = s.new_var();
        let x4 = s.new_var();
        s.add_clause(&[Lit::new(x1, true)]);
        s.add_clause(&[Lit::new(x1, false), Lit::new(x2, true)]);
        let assumptions = [Lit::new(x3, true), Lit::new(x2, false), Lit::new(x4, true)];
        let out = s.solve_assuming(&assumptions, Budget::unlimited());
        assert_eq!(out, SatOutcome::Unsat);
        let core = s.failed_assumptions().to_vec();
        assert!(!core.is_empty());
        for l in &core {
            assert!(
                assumptions.contains(l),
                "core literal {l:?} is not an assumption"
            );
        }
        assert!(core.contains(&Lit::new(x2, false)));
        // The solver survives assumption-unsat: without assumptions the
        // formula is satisfiable.
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Sat);
        assert_eq!(s.value(x2), Some(true));
    }

    #[test]
    fn empty_core_means_formula_itself_unsat() {
        let mut s = SatSolver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause(&[Lit::new(a, true)]);
        s.add_clause(&[Lit::new(a, false)]);
        let out = s.solve_assuming(&[Lit::new(b, true)], Budget::unlimited());
        assert_eq!(out, SatOutcome::Unsat);
        assert!(s.failed_assumptions().is_empty());
    }

    #[test]
    fn clauses_addable_between_solves() {
        // Grow the formula across solve calls; learned state persists but
        // answers track the full clause set.
        let mut s = SatSolver::new();
        let mut vars = Vec::new();
        let cls: [&[i32]; 3] = [&[1, 2], &[-1, 3], &[-2, 3]];
        for c in cls {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(&mut s, &mut vars, i)).collect();
            s.add_clause(&ls);
        }
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Sat);
        assert_eq!(s.value(vars[2]), Some(true)); // 3 is forced by 1∨2
        let neg3: Vec<Lit> = vec![lit(&mut s, &mut vars, -3)];
        s.add_clause(&neg3);
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Unsat);
    }

    #[test]
    fn simplify_removes_subsumed_and_keeps_answers() {
        let mut s = SatSolver::new();
        let mut vars = Vec::new();
        // (1 2) subsumes (1 2 3); resolving (1 2) with (−1 2) strengthens
        // to the unit (2), which then forces 4 through (−2 4).
        let cls: [&[i32]; 4] = [&[1, 2, 3], &[1, 2], &[-1, 2], &[-2, 4]];
        for c in cls {
            let ls: Vec<Lit> = c.iter().map(|&i| lit(&mut s, &mut vars, i)).collect();
            s.add_clause(&ls);
        }
        let before = s.num_clauses();
        assert!(s.simplify());
        assert!(s.num_clauses() < before, "subsumed clause not removed");
        assert_eq!(s.solve(Budget::unlimited()), SatOutcome::Sat);
        // 2 is forced (by resolution of (1 2) and (−1 2)), hence 4.
        assert_eq!(s.value(vars[1]), Some(true));
        assert_eq!(s.value(vars[3]), Some(true));
    }

    #[test]
    fn simplify_then_solve_agrees_with_brute_force() {
        let mut state = 0x9E3779B9u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for round in 0..40 {
            let n = 6;
            let m = 4 + (round % 16);
            let mut cls: Vec<Vec<i32>> = Vec::new();
            for _ in 0..m {
                let len = 1 + (rng() % 3) as usize;
                let mut c = Vec::new();
                for _ in 0..=len {
                    let v = (rng() % n + 1) as i32;
                    let s = if rng() % 2 == 0 { 1 } else { -1 };
                    c.push(v * s);
                }
                cls.push(c);
            }
            let mut brute_sat = false;
            'assign: for bits in 0..(1u32 << n) {
                for c in &cls {
                    let ok = c.iter().any(|&l| {
                        let v = l.unsigned_abs() - 1;
                        let val = bits >> v & 1 == 1;
                        if l > 0 {
                            val
                        } else {
                            !val
                        }
                    });
                    if !ok {
                        continue 'assign;
                    }
                }
                brute_sat = true;
                break;
            }
            let mut s = SatSolver::new();
            let mut vars = Vec::new();
            for c in &cls {
                let ls: Vec<Lit> = c.iter().map(|&i| lit(&mut s, &mut vars, i)).collect();
                s.add_clause(&ls);
            }
            s.simplify();
            let got = s.solve(Budget::unlimited());
            let expect = if brute_sat {
                SatOutcome::Sat
            } else {
                SatOutcome::Unsat
            };
            assert_eq!(got, expect, "round {round}: {cls:?}");
        }
    }

    #[test]
    fn warm_solver_agrees_with_fresh_on_growing_formula() {
        // Incremental parity: push clauses in batches into one long-lived
        // solver and compare each verdict against a from-scratch solver.
        let mut state = 0x2545F491u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let n = 8;
        let mut all: Vec<Vec<i32>> = Vec::new();
        let mut warm = SatSolver::new();
        let mut warm_vars = Vec::new();
        for batch in 0..12 {
            for _ in 0..3 {
                let mut c = Vec::new();
                for _ in 0..3 {
                    let v = (rng() % n + 1) as i32;
                    let s = if rng() % 2 == 0 { 1 } else { -1 };
                    c.push(v * s);
                }
                let ls: Vec<Lit> = c
                    .iter()
                    .map(|&i| lit(&mut warm, &mut warm_vars, i))
                    .collect();
                warm.add_clause(&ls);
                all.push(c);
            }
            let refs: Vec<&[i32]> = all.iter().map(|c| c.as_slice()).collect();
            let fresh = solve_dimacs(&refs);
            let got = warm.solve(Budget::unlimited());
            assert_eq!(got, fresh, "batch {batch} diverged: {all:?}");
        }
    }
}

//! The user-facing SMT solver: assert terms, check satisfiability under a
//! resource budget, and extract models.
//!
//! Two entry points share the term-to-CNF pipeline:
//!
//! * [`Solver`] — the one-shot path. Each check rebuilds, preprocesses,
//!   and canonicalizes the CNF, so its results are a pure function of the
//!   canonical formula and are *eligible for the query cache*.
//! * [`IncrementalSolver`] — a persistent push-assertion /
//!   check-under-assumptions solver that keeps its bit-blaster, clause
//!   database, learned clauses, and variable activities alive across
//!   checks. Its results depend on solver history (warm state, activation
//!   literals), not on a canonical formula, so it *never touches the
//!   query cache* — it trades cache eligibility for clause reuse.

use crate::ackermann::{ackermannize, Ackermannizer};
use crate::bitblast::BitBlaster;
use crate::cache::{self, CachedOutcome};
use crate::model::{Model, Value};
use crate::sat::{Budget, Lit, SatOutcome, SatSolver, SatVar};
use crate::term::{Ctx, Sort, TermId};

/// The outcome of an SMT check.
#[derive(Clone, Debug)]
pub enum SmtResult {
    /// Satisfiable, with a model over the assertions' free variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The time/conflict budget was exhausted.
    Timeout,
    /// The memory budget was exhausted.
    OutOfMemory,
}

impl SmtResult {
    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// True if the check ran out of resources.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, SmtResult::Timeout | SmtResult::OutOfMemory)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// The profile-record outcome tag of a result.
fn result_str(r: &SmtResult) -> &'static str {
    match r {
        SmtResult::Sat(_) => "sat",
        SmtResult::Unsat => "unsat",
        SmtResult::Timeout => "timeout",
        SmtResult::OutOfMemory => "oom",
    }
}

/// A one-shot SMT solver over a [`Ctx`].
///
/// # Examples
///
/// ```
/// use alive2_smt::solver::Solver;
/// use alive2_smt::term::{Ctx, Sort};
/// use alive2_smt::sat::Budget;
///
/// let ctx = Ctx::new();
/// let x = ctx.var("x", Sort::BitVec(8));
/// let five = ctx.bv_lit_u64(8, 5);
/// let mut s = Solver::new(&ctx);
/// s.assert(ctx.bv_ult(x, five));
/// let r = s.check(Budget::unlimited());
/// assert!(r.is_sat());
/// let m = r.model().unwrap();
/// assert!(m.eval_bv(&ctx, x).to_u64() < 5);
/// ```
#[derive(Debug)]
pub struct Solver<'a> {
    ctx: &'a Ctx,
    assertions: Vec<TermId>,
    rewrite: bool,
}

impl<'a> Solver<'a> {
    /// Creates a solver over the given context.
    pub fn new(ctx: &'a Ctx) -> Self {
        Solver {
            ctx,
            assertions: Vec::new(),
            rewrite: true,
        }
    }

    /// Enables/disables the term-rewriting pass that runs ahead of
    /// bit-blasting (default on; the `--no-rewrite` escape hatch). The
    /// pass is applied *before* CNF construction, so cache fingerprints
    /// are computed on the simplified formula.
    pub fn set_rewrite(&mut self, on: bool) {
        self.rewrite = on;
    }

    /// Adds an assertion (must be boolean-sorted).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not boolean-sorted.
    pub fn assert(&mut self, t: TermId) {
        assert!(self.ctx.sort(t).is_bool(), "assertions must be boolean");
        self.assertions.push(t);
    }

    /// The asserted terms.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Checks satisfiability of the conjunction of assertions.
    ///
    /// The returned model is *partial* in the sense of §3.8 of the paper:
    /// it only assigns variables whose CNF encoding was actually created
    /// (i.e. variables that appear in the formula after simplification).
    pub fn check(&self, budget: Budget) -> SmtResult {
        let _sp = alive2_obs::span(alive2_obs::Phase::Query);
        let started = std::time::Instant::now();
        let mut prof = alive2_obs::QueryProfile::default();
        let result = self.check_inner(budget, &mut prof);
        match &result {
            SmtResult::Sat(_) => alive2_obs::stats::record_smt_sat(),
            SmtResult::Unsat => alive2_obs::stats::record_smt_unsat(),
            SmtResult::Timeout | SmtResult::OutOfMemory => alive2_obs::stats::record_smt_unknown(),
        }
        prof.wall_us = started.elapsed().as_micros() as u64;
        prof.result = result_str(&result);
        alive2_obs::profile::record_query(prof);
        result
    }

    fn check_inner(&self, budget: Budget, prof: &mut alive2_obs::QueryProfile) -> SmtResult {
        // Fast path: syntactically trivial. The empty model means "every
        // variable is a don't-care" — provenance the counterexample
        // printer surfaces via `Model::try_eval` (it renders them as
        // `any` rather than the fabricated zeros of `eval`).
        let mut conj = self.ctx.and_many(&self.assertions);
        if let Some(b) = self.ctx.as_bool_lit(conj) {
            return if b {
                SmtResult::Sat(Model::new())
            } else {
                SmtResult::Unsat
            };
        }
        // Term-level rewriting: try to discharge the whole obligation by
        // algebra before any CNF exists. The residue (if any) is what gets
        // blasted, so downstream cache keys see the simplified formula.
        if self.rewrite {
            let steps_before = alive2_obs::stats::rewrite_steps_now();
            let r = crate::rewrite::simplify(self.ctx, conj);
            prof.rewrite_steps = alive2_obs::stats::rewrite_steps_now() - steps_before;
            if let Some(b) = self.ctx.as_bool_lit(r) {
                alive2_obs::stats::record_rewrite_discharged();
                prof.discharged = true;
                return if b {
                    SmtResult::Sat(Model::new())
                } else {
                    SmtResult::Unsat
                };
            }
            alive2_obs::stats::record_rewrite_residue();
            conj = r;
        }
        let ack = ackermannize(self.ctx, &[conj]);
        let mut bb = BitBlaster::new(self.ctx);
        // Roots include the Ackermann result variables (mapped back to
        // applications by callers that care).
        let roots: Vec<TermId> = ack
            .assertions
            .iter()
            .chain(&ack.constraints)
            .copied()
            .collect();
        for &t in &roots {
            bb.assert_term(t);
        }

        // Preprocess, canonicalize, and always solve the *canonical*
        // formula: the solve result is then a pure function of the
        // canonical CNF, so a cache replay is bit-identical to the live
        // solve it memoized and verdicts cannot depend on cache state.
        prof.vars_pre = u64::from(bb.cnf.num_vars());
        prof.clauses_pre = bb.cnf.clauses().len() as u64;
        let pre = cache::preprocess(&bb.cnf);
        if pre.conflict {
            return SmtResult::Unsat;
        }
        let canon = cache::canonicalize(&pre);
        prof.vars_post = u64::from(canon.num_vars);
        prof.clauses_post = canon.clauses.len() as u64;

        // Projects an assignment over canonical variables back through
        // the blaster onto the term-level free variables. Distinguishes
        // three cases per SAT variable: forced at level 0 (preprocess),
        // assigned by the search (canonical map), or eliminated/never
        // materialized — a genuine don't-care, left out of the model.
        let build_model = |bits: &[Option<bool>]| -> Model {
            let sat_val = |sv: SatVar| -> Option<bool> {
                pre.assigned[sv.0 as usize].or_else(|| {
                    canon
                        .var_map
                        .get(&sv)
                        .and_then(|&cv| bits.get(cv as usize).copied().flatten())
                })
            };
            let lit_val = |l: Lit| -> Option<bool> {
                sat_val(l.var()).map(|b| if l.is_positive() { b } else { !b })
            };
            let mut model = Model::new();
            for vt in self.ctx.free_vars_many(&roots) {
                let v = self.ctx.as_var(vt).expect("free var is a Var term");
                match self.ctx.sort(vt) {
                    Sort::Bool => {
                        if let Some(b) = bb.bool_var_lit(v).and_then(lit_val) {
                            model.set(v, Value::Bool(b));
                        }
                    }
                    Sort::BitVec(_) => {
                        let Some(lits) = bb.bv_var_lits(v) else {
                            continue;
                        };
                        let vals: Vec<Option<bool>> = lits.iter().map(|&l| lit_val(l)).collect();
                        if vals.iter().all(Option::is_none) {
                            continue; // wholly unconstrained: don't-care
                        }
                        // Partially constrained: the free bits really can
                        // be anything, so zero them (re-validation below
                        // checks exactly this zero-completion).
                        let bools: Vec<bool> = vals.iter().map(|b| b.unwrap_or(false)).collect();
                        model.set(v, Value::Bv(crate::bv::BitVec::from_bits(&bools)));
                    }
                }
            }
            model
        };

        if canon.clauses.is_empty() {
            // Level-0 propagation satisfied every clause; no search (and
            // no cache traffic — this is as cheap as a hit) needed.
            return SmtResult::Sat(build_model(&[]));
        }

        let fp = canon.fingerprint();
        let vars = canon.num_vars;
        let nclauses = canon.clauses.len() as u32;
        let qcache = cache::global();
        match qcache.lookup(fp, vars, nclauses) {
            Some(CachedOutcome::Unsat) => {
                alive2_obs::stats::record_cache_hit();
                prof.cache = alive2_obs::profile::CacheOutcome::Hit;
                return SmtResult::Unsat;
            }
            Some(CachedOutcome::Sat(bits)) => {
                // Soundness backstop: replay the cached assignment and
                // re-validate it against the actual assertions before
                // trusting it. A stale, corrupted, or colliding entry
                // degrades to a live solve, never to a wrong verdict.
                let model = build_model(&bits);
                if roots.iter().all(|&t| model.eval(self.ctx, t).as_bool()) {
                    alive2_obs::stats::record_cache_hit();
                    prof.cache = alive2_obs::profile::CacheOutcome::Hit;
                    return SmtResult::Sat(model);
                }
                alive2_obs::stats::record_cache_reval();
                prof.cache = alive2_obs::profile::CacheOutcome::Reval;
            }
            None => {}
        }
        alive2_obs::stats::record_cache_miss();
        alive2_obs::stats::record_sat_solve();
        if prof.cache == alive2_obs::profile::CacheOutcome::None {
            prof.cache = alive2_obs::profile::CacheOutcome::Miss;
        }
        prof.solved = true;
        let mut sat = canon.to_solver();
        let outcome = sat.solve(budget);
        let st = sat.stats();
        prof.conflicts = st.conflicts;
        prof.decisions = st.decisions;
        prof.propagations = st.propagations;
        prof.restarts = st.restarts;
        prof.learnts_kept = sat.num_learnts() as u64;
        match outcome {
            // Budget verdicts are a property of this run, not of the
            // formula: never cached.
            SatOutcome::TimedOut => SmtResult::Timeout,
            SatOutcome::OutOfMemory => SmtResult::OutOfMemory,
            SatOutcome::Unsat => {
                qcache.store(fp, vars, nclauses, CachedOutcome::Unsat);
                SmtResult::Unsat
            }
            SatOutcome::Sat => {
                let bits = sat.assignment();
                qcache.store(fp, vars, nclauses, CachedOutcome::Sat(bits.clone()));
                SmtResult::Sat(build_model(&bits))
            }
        }
    }
}

/// An activation literal guarding a retractable clause group of an
/// [`IncrementalSolver`]. A group's clauses only bind while its
/// activation is passed to [`IncrementalSolver::check`]; leaving it out
/// retracts the whole group without touching the clause database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Activation(Lit);

/// A persistent SMT solver: assertions are pushed once and stay loaded;
/// each [`check`](Self::check) reuses the live CDCL solver — clause
/// database, learned clauses, VSIDS activities, saved phases — warm.
///
/// New assertions are bit-blasted *incrementally*: the blaster's
/// term→literal map is stable, so a pushed assertion only appends the
/// clauses for structure not already encoded (`clauses_reused` counts
/// what a check inherited instead of rebuilding).
///
/// # Cache eligibility (the PR 5 canonical-CNF cache)
///
/// Incremental checks never consult or populate the query cache. The
/// cache's contract is that a stored result is a pure function of a
/// canonical CNF; an incremental verdict is a function of the solver's
/// history — which groups are active, what was learned under earlier
/// assumptions — and the live clause list is never canonicalized. Use
/// the one-shot [`Solver`] when a query is likely shared across jobs or
/// reruns; use this solver for query *sequences* that grow monotonically
/// (the CEGQI candidate loop), where warm-state reuse beats cross-job
/// deduplication.
///
/// # Examples
///
/// ```
/// use alive2_smt::solver::IncrementalSolver;
/// use alive2_smt::term::{Ctx, Sort};
/// use alive2_smt::sat::Budget;
///
/// let ctx = Ctx::new();
/// let x = ctx.var("x", Sort::BitVec(8));
/// let mut s = IncrementalSolver::new(&ctx);
/// s.assert(ctx.bv_ult(x, ctx.bv_lit_u64(8, 5)));
/// let g = s.new_group();
/// s.assert_in(g, ctx.bv_ult(ctx.bv_lit_u64(8, 2), x));
/// assert!(s.check(&[g], Budget::unlimited()).is_sat()); // 2 < x < 5
/// assert!(s.check(&[], Budget::unlimited()).is_sat()); // group retracted
/// ```
#[derive(Debug)]
pub struct IncrementalSolver<'a> {
    ctx: &'a Ctx,
    bb: BitBlaster<'a>,
    sat: SatSolver,
    ack: Ackermannizer,
    /// Prefix of `bb.cnf` already loaded into `sat`.
    synced_vars: u32,
    synced_clauses: usize,
    /// Every rewritten assertion root (permanent and grouped) plus the
    /// Ackermann consistency constraints — the model projection domain.
    roots: Vec<TermId>,
    /// A pushed assertion folded to `false`: permanently unsat.
    falsified: bool,
    checks: u64,
    /// Clause count at the last inprocessing pass (drives the "database
    /// grew enough to re-simplify" heuristic).
    simplified_at: usize,
    /// Reset saved phases to the zero default before each check (see
    /// [`set_zero_phase`](Self::set_zero_phase)).
    zero_phase: bool,
    /// Apply the term-rewriting pass to each pushed assertion.
    rewrite: bool,
}

impl<'a> IncrementalSolver<'a> {
    /// Creates an empty persistent solver over the given context.
    pub fn new(ctx: &'a Ctx) -> Self {
        IncrementalSolver {
            ctx,
            bb: BitBlaster::new(ctx),
            sat: SatSolver::new(),
            ack: Ackermannizer::new(),
            synced_vars: 0,
            synced_clauses: 0,
            roots: Vec::new(),
            falsified: false,
            checks: 0,
            simplified_at: 0,
            zero_phase: false,
            rewrite: true,
        }
    }

    /// Enables/disables the term-rewriting pass applied to each pushed
    /// assertion (default on; the `--no-rewrite` escape hatch).
    pub fn set_rewrite(&mut self, on: bool) {
        self.rewrite = on;
    }

    /// When enabled, every check starts from the all-false phase default
    /// instead of the phases saved by the previous solve, biasing models
    /// toward mostly-zero assignments while keeping learned clauses and
    /// variable activities warm. Model-*shape* sensitive loops (CEGQI's
    /// candidate step) converge much faster on such regular models; pure
    /// sat/unsat clients should leave this off and keep full phase reuse.
    pub fn set_zero_phase(&mut self, on: bool) {
        self.zero_phase = on;
    }

    /// Ackermannizes `t` incrementally and blasts it to a single literal.
    /// Consistency constraints pairing new applications against all
    /// previously pushed ones are asserted permanently (sound even for
    /// grouped assertions: the constraints are implications over shared
    /// application variables).
    fn blast_rewritten(&mut self, t: TermId) -> Option<Lit> {
        let t = if self.rewrite && self.ctx.as_bool_lit(t).is_none() {
            let r = crate::rewrite::simplify(self.ctx, t);
            if self.ctx.as_bool_lit(r).is_some() {
                alive2_obs::stats::record_rewrite_discharged();
            } else {
                alive2_obs::stats::record_rewrite_residue();
            }
            r
        } else {
            t
        };
        let mut constraints = Vec::new();
        let r = self.ack.rewrite(self.ctx, t, &mut constraints);
        for c in constraints {
            self.roots.push(c);
            let l = self.bb.blast_bool(c);
            self.bb.cnf.add_clause(&[l]);
        }
        match self.ctx.as_bool_lit(r) {
            Some(true) => None,
            Some(false) => {
                self.falsified = true;
                None
            }
            None => {
                self.roots.push(r);
                Some(self.bb.blast_bool(r))
            }
        }
    }

    /// Pushes a permanent assertion (must be boolean-sorted). There is no
    /// pop: retraction is modeled with [`new_group`](Self::new_group) /
    /// [`assert_in`](Self::assert_in).
    pub fn assert(&mut self, t: TermId) {
        assert!(self.ctx.sort(t).is_bool(), "assertions must be boolean");
        if let Some(l) = self.blast_rewritten(t) {
            self.bb.cnf.add_clause(&[l]);
        }
    }

    /// Allocates a fresh activation literal for a retractable clause group.
    pub fn new_group(&mut self) -> Activation {
        Activation(Lit::new(self.bb.cnf.new_var(), true))
    }

    /// Pushes an assertion guarded by group `g`: it binds only in checks
    /// whose activation set includes `g` (encoded as `¬g ∨ t`).
    pub fn assert_in(&mut self, g: Activation, t: TermId) {
        assert!(self.ctx.sort(t).is_bool(), "assertions must be boolean");
        match self.blast_rewritten(t) {
            Some(l) => self.bb.cnf.add_clause(&[g.0.negate(), l]),
            None if self.falsified => {
                // The body folded to `false`: the group is unsatisfiable
                // whenever active, but the solver as a whole is not.
                self.falsified = false;
                self.bb.cnf.add_clause(&[g.0.negate()]);
            }
            None => {}
        }
    }

    /// Loads the not-yet-synced suffix of the blasted CNF into the live
    /// solver. Returns the number of clauses that were already resident
    /// (the reuse payload of this check).
    fn sync(&mut self) -> usize {
        let reused = self.synced_clauses;
        while self.synced_vars < self.bb.cnf.num_vars() {
            self.sat.new_var();
            self.synced_vars += 1;
        }
        let clauses = self.bb.cnf.clauses();
        while self.synced_clauses < clauses.len() {
            self.sat.add_clause(&clauses[self.synced_clauses]);
            self.synced_clauses += 1;
        }
        reused
    }

    /// Checks satisfiability of the permanent assertions plus the groups
    /// in `active`, reusing all warm solver state. Activation literals
    /// are passed to the SAT core as *assumptions* (decided at level 0's
    /// edge), so nothing about the activation set is ever learned into
    /// the clause database.
    ///
    /// On unsat caused by the activation set,
    /// [`failed_groups`](Self::failed_groups) names a failed core.
    pub fn check(&mut self, active: &[Activation], budget: Budget) -> SmtResult {
        let _sp = alive2_obs::span(alive2_obs::Phase::Query);
        let started = std::time::Instant::now();
        let mut prof = alive2_obs::QueryProfile {
            incremental: true,
            ..alive2_obs::QueryProfile::default()
        };
        let result = self.check_live(active, budget, &mut prof);
        match &result {
            SmtResult::Sat(_) => alive2_obs::stats::record_smt_sat(),
            SmtResult::Unsat => alive2_obs::stats::record_smt_unsat(),
            SmtResult::Timeout | SmtResult::OutOfMemory => alive2_obs::stats::record_smt_unknown(),
        }
        prof.wall_us = started.elapsed().as_micros() as u64;
        prof.result = result_str(&result);
        alive2_obs::profile::record_query(prof);
        result
    }

    fn check_live(
        &mut self,
        active: &[Activation],
        budget: Budget,
        prof: &mut alive2_obs::QueryProfile,
    ) -> SmtResult {
        if self.falsified {
            return SmtResult::Unsat;
        }
        let reused = self.sync();
        alive2_obs::stats::record_incremental_solve();
        alive2_obs::stats::record_clauses_reused(reused as u64);
        alive2_obs::stats::record_learnts_kept(self.sat.num_learnts() as u64);
        // For the live solver "pre" is the blasted CNF and "post" is the
        // resident clause population at dispatch (no canonical layer).
        prof.vars_pre = u64::from(self.bb.cnf.num_vars());
        prof.clauses_pre = self.bb.cnf.clauses().len() as u64;
        prof.vars_post = u64::from(self.bb.cnf.num_vars());
        prof.solved = true;
        self.checks += 1;
        // Bounded inprocessing once the database has grown by ≥25% since
        // the last pass — keeps long-lived solvers from drowning in
        // subsumed clauses without paying the sweep on every check.
        let live = self.sat.num_clauses();
        if self.checks > 1 && live > self.simplified_at + self.simplified_at / 4 {
            self.sat.simplify();
            self.simplified_at = self.sat.num_clauses();
        } else if self.checks == 1 {
            self.simplified_at = live;
        }
        if self.zero_phase {
            self.sat.reset_phases();
        }
        prof.clauses_post = self.sat.num_clauses() as u64;
        let assumptions: Vec<Lit> = active.iter().map(|a| a.0).collect();
        let outcome = self.sat.solve_assuming(&assumptions, budget);
        let st = self.sat.stats();
        prof.conflicts = st.conflicts;
        prof.decisions = st.decisions;
        prof.propagations = st.propagations;
        prof.restarts = st.restarts;
        prof.learnts_kept = self.sat.num_learnts() as u64;
        match outcome {
            SatOutcome::TimedOut => SmtResult::Timeout,
            SatOutcome::OutOfMemory => SmtResult::OutOfMemory,
            SatOutcome::Unsat => {
                if !self.sat.failed_assumptions().is_empty() {
                    alive2_obs::stats::record_assumption_core();
                }
                SmtResult::Unsat
            }
            SatOutcome::Sat => SmtResult::Sat(self.build_model()),
        }
    }

    /// The failed-assumption core of the most recent unsat check, mapped
    /// back to activation handles: a subset of that check's `active` set
    /// that is already jointly unsatisfiable with the permanent clauses.
    /// Empty when the permanent assertions are unsat on their own.
    pub fn failed_groups(&self) -> Vec<Activation> {
        self.sat
            .failed_assumptions()
            .iter()
            .map(|&l| Activation(l))
            .collect()
    }

    /// Projects the SAT assignment back onto term-level free variables.
    /// Unlike the one-shot path there is no preprocessing or
    /// canonicalization layer: blaster literals map straight to solver
    /// variables. Variables never materialized by the blaster are
    /// genuine don't-cares and stay absent.
    fn build_model(&self) -> Model {
        let lit_val = |l: Lit| -> Option<bool> {
            self.sat
                .value(l.var())
                .map(|b| if l.is_positive() { b } else { !b })
        };
        let mut model = Model::new();
        for vt in self.ctx.free_vars_many(&self.roots) {
            let v = self.ctx.as_var(vt).expect("free var is a Var term");
            match self.ctx.sort(vt) {
                Sort::Bool => {
                    if let Some(b) = self.bb.bool_var_lit(v).and_then(lit_val) {
                        model.set(v, Value::Bool(b));
                    }
                }
                Sort::BitVec(_) => {
                    let Some(lits) = self.bb.bv_var_lits(v) else {
                        continue;
                    };
                    let vals: Vec<Option<bool>> = lits.iter().map(|&l| lit_val(l)).collect();
                    if vals.iter().all(Option::is_none) {
                        continue;
                    }
                    let bools: Vec<bool> = vals.iter().map(|b| b.unwrap_or(false)).collect();
                    model.set(v, Value::Bv(crate::bv::BitVec::from_bits(&bools)));
                }
            }
        }
        model
    }
}

/// Convenience: checks whether `t` is valid (true in all models) under the
/// budget. Returns `Some(true)` if valid, `Some(false)` if a countermodel
/// exists, `None` on resource exhaustion.
pub fn is_valid(ctx: &Ctx, t: TermId, budget: Budget) -> Option<bool> {
    let mut s = Solver::new(ctx);
    s.assert(ctx.not(t));
    match s.check(budget) {
        SmtResult::Unsat => Some(true),
        SmtResult::Sat(_) => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn sat_with_model() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let sum = ctx.bv_add(x, y);
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(sum, ctx.bv_lit_u64(8, 10)));
        s.assert(ctx.bv_ult(x, ctx.bv_lit_u64(8, 3)));
        let r = s.check(Budget::unlimited());
        let m = r.model().expect("sat");
        let xv = m.eval_bv(&ctx, x).to_u64();
        let yv = m.eval_bv(&ctx, y).to_u64();
        assert!(xv < 3);
        assert_eq!((xv + yv) & 0xff, 10);
    }

    #[test]
    fn unsat_arithmetic() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        // x < x is unsat
        let mut s = Solver::new(&ctx);
        let xp1 = ctx.bv_add(x, ctx.bv_lit_u64(8, 1));
        // x + 1 == x is unsat
        s.assert(ctx.eq(xp1, x));
        assert!(s.check(Budget::unlimited()).is_unsat());
    }

    #[test]
    fn validity_of_commutativity() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        // These fold to the same term by canonical ordering, but check the
        // full pipeline with a non-trivial identity: (x + y) - y == x.
        let t = ctx.eq(ctx.bv_sub(ctx.bv_add(x, y), y), x);
        assert_eq!(is_valid(&ctx, t, Budget::unlimited()), Some(true));
        // x * 2 == x << 1
        let two = ctx.bv_lit_u64(8, 2);
        let one = ctx.bv_lit_u64(8, 1);
        let t2 = ctx.eq(ctx.bv_mul(x, two), ctx.bv_shl(x, one));
        assert_eq!(is_valid(&ctx, t2, Budget::unlimited()), Some(true));
        // x - 1 == x + 1 is invalid
        let t3 = ctx.eq(ctx.bv_sub(x, one), ctx.bv_add(x, one));
        assert_eq!(is_valid(&ctx, t3, Budget::unlimited()), Some(false));
    }

    #[test]
    fn uf_consistency() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(x, y));
        s.assert(ctx.ne(fx, fy));
        assert!(s.check(Budget::unlimited()).is_unsat());
        // Without x == y, f(x) != f(y) is satisfiable.
        let mut s2 = Solver::new(&ctx);
        s2.assert(ctx.ne(fx, fy));
        assert!(s2.check(Budget::unlimited()).is_sat());
    }

    #[test]
    fn trivial_paths() {
        let ctx = Ctx::new();
        let s = Solver::new(&ctx);
        assert!(s.check(Budget::unlimited()).is_sat()); // empty = true
        let mut s2 = Solver::new(&ctx);
        s2.assert(ctx.fals());
        assert!(s2.check(Budget::unlimited()).is_unsat());
    }

    /// Runs one check and returns it with the counter deltas it caused
    /// (thread-local, so parallel tests don't interfere).
    fn probe(s: &Solver, budget: Budget) -> (SmtResult, alive2_obs::JobStats) {
        let snap = alive2_obs::counters_snapshot();
        let r = s.check(budget);
        let mut d = alive2_obs::JobStats::default();
        d.absorb_since(&snap);
        (r, d)
    }

    #[test]
    fn timeout_results_are_not_cached() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        // x² = 0xB7 is unsat (odd squares are 1 mod 8, 0xB7 is 7 mod 8)
        // but refuting a multiplier circuit needs real search, so a
        // zero-conflict budget deterministically times out at the first
        // conflict. Distinctive constants: no other test in this process
        // shares the fingerprint, so the shared global cache stays
        // predictable here.
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(ctx.bv_mul(x, x), ctx.bv_lit_u64(8, 0xB7)));
        let starved = Budget {
            max_conflicts: 0,
            ..Budget::unlimited()
        };

        let (r1, d1) = probe(&s, starved);
        assert!(matches!(r1, SmtResult::Timeout), "{r1:?}");
        assert_eq!(d1.cache_misses, 1);
        // A second identical check must miss again: budget verdicts are a
        // property of the run, never cached.
        let (r2, d2) = probe(&s, starved);
        assert!(matches!(r2, SmtResult::Timeout), "{r2:?}");
        assert_eq!((d2.cache_hits, d2.cache_misses), (0, 1));
        // Solve for real: a live solve, and the outcome is now cached.
        let (r3, d3) = probe(&s, Budget::unlimited());
        assert!(matches!(r3, SmtResult::Unsat), "{r3:?}");
        assert_eq!((d3.sat_solves, d3.cache_hits), (1, 0));
        // The cached answer replays without search — even under the same
        // starved budget that timed out before.
        let (r4, d4) = probe(&s, starved);
        assert!(matches!(r4, SmtResult::Unsat), "{r4:?}");
        assert_eq!((d4.sat_solves, d4.cache_hits), (0, 1));
    }

    #[test]
    fn cached_sat_replay_matches_live_model() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(ctx.bv_add(x, y), ctx.bv_lit_u64(8, 0xC3)));
        s.assert(ctx.bv_ult(x, ctx.bv_lit_u64(8, 0x1D)));
        let (r1, d1) = probe(&s, Budget::unlimited());
        let (r2, d2) = probe(&s, Budget::unlimited());
        assert_eq!(d2.sat_solves, 0, "second check must replay: {d2:?}");
        assert_eq!(d2.cache_hits, 1);
        let (m1, m2) = (r1.model().unwrap(), r2.model().unwrap());
        // Bit-identical replay: the cached model is exactly the live one.
        assert_eq!(m1.eval_bv(&ctx, x), m2.eval_bv(&ctx, x));
        assert_eq!(m1.eval_bv(&ctx, y), m2.eval_bv(&ctx, y));
        let _ = d1;
    }

    #[test]
    fn unit_propagation_solves_equalities_without_search() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(x, ctx.bv_lit_u64(8, 0xA7)));
        let (r, d) = probe(&s, Budget::unlimited());
        let m = r.model().expect("sat");
        assert_eq!(m.eval_bv(&ctx, x).to_u64(), 0xA7);
        assert_eq!(d.sat_solves, 0, "level-0 propagation needs no search");
    }

    #[test]
    fn trivially_true_model_reports_vars_as_dont_cares() {
        // The fast path returns an *empty* model. The bug this guards
        // against: `eval` silently zero-defaults, fabricating an all-zero
        // "counterexample"; `try_eval` must expose the don't-care.
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let tauto = ctx.eq(ctx.bv_and(x, x), x); // folds to true
        let mut s = Solver::new(&ctx);
        s.assert(tauto);
        let r = s.check(Budget::unlimited());
        let m = r.model().expect("sat");
        assert!(m.is_empty());
        assert_eq!(m.try_eval(&ctx, x), None, "x is a don't-care, not zero");
    }

    #[test]
    fn partial_model_omits_simplified_vars() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        // y * 0 removes y from the formula entirely.
        let t = ctx.eq(ctx.bv_add(x, ctx.bv_mul(y, ctx.bv_lit_u64(8, 0))), x);
        let mut s = Solver::new(&ctx);
        s.assert(t);
        match s.check(Budget::unlimited()) {
            SmtResult::Sat(m) => {
                assert!(!m.contains(ctx.as_var(y).unwrap()));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }

    /// Runs one incremental check and returns it with the counter deltas.
    fn probe_inc(
        s: &mut IncrementalSolver,
        active: &[Activation],
        budget: Budget,
    ) -> (SmtResult, alive2_obs::JobStats) {
        let snap = alive2_obs::counters_snapshot();
        let r = s.check(active, budget);
        let mut d = alive2_obs::JobStats::default();
        d.absorb_since(&snap);
        (r, d)
    }

    #[test]
    fn incremental_grows_and_agrees_with_one_shot() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let mut inc = IncrementalSolver::new(&ctx);
        let asserts = [
            ctx.eq(ctx.bv_add(x, y), ctx.bv_lit_u64(8, 10)),
            ctx.bv_ult(x, ctx.bv_lit_u64(8, 3)),
            ctx.bv_ult(ctx.bv_lit_u64(8, 5), y),
        ];
        let mut so_far = Vec::new();
        for a in asserts {
            inc.assert(a);
            so_far.push(a);
            let mut fresh = Solver::new(&ctx);
            for &t in &so_far {
                fresh.assert(t);
            }
            let inc_r = inc.check(&[], Budget::unlimited());
            let fresh_r = fresh.check(Budget::unlimited());
            assert_eq!(inc_r.is_sat(), fresh_r.is_sat(), "diverged at {so_far:?}");
            if let Some(m) = inc_r.model() {
                // The incremental model must actually satisfy the asserts.
                let xv = m.eval_bv(&ctx, x).to_u64();
                let yv = m.eval_bv(&ctx, y).to_u64();
                assert_eq!((xv + yv) & 0xff, 10);
            }
        }
        // Adding y < 8 squeezes x+y to at most 2+7 = 9 < 10: unsat.
        inc.assert(ctx.bv_ult(y, ctx.bv_lit_u64(8, 8)));
        let r = inc.check(&[], Budget::unlimited());
        assert!(r.is_unsat(), "x<3 ∧ 5<y<8 ∧ x+y=10 must be unsat: {r:?}");
    }

    #[test]
    fn activation_groups_retract() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let mut s = IncrementalSolver::new(&ctx);
        s.assert(ctx.bv_ult(x, ctx.bv_lit_u64(8, 10)));
        let g1 = s.new_group();
        s.assert_in(g1, ctx.bv_ult(ctx.bv_lit_u64(8, 20), x)); // x > 20
        let g2 = s.new_group();
        s.assert_in(g2, ctx.eq(x, ctx.bv_lit_u64(8, 5)));
        // g1 conflicts with the permanent bound; g2 doesn't.
        assert!(s.check(&[g1], Budget::unlimited()).is_unsat());
        let core = s.failed_groups();
        assert_eq!(core, vec![g1]);
        assert!(s.check(&[g2], Budget::unlimited()).is_sat());
        assert!(s.check(&[g1, g2], Budget::unlimited()).is_unsat());
        // Dropping every group retracts all guarded constraints.
        let r = s.check(&[], Budget::unlimited());
        let m = r.model().expect("sat with groups retracted");
        assert!(m.eval_bv(&ctx, x).to_u64() < 10);
    }

    #[test]
    fn incremental_counters_and_cache_bypass() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let mut s = IncrementalSolver::new(&ctx);
        s.assert(ctx.bv_ult(x, ctx.bv_lit_u64(8, 100)));
        let (r1, d1) = probe_inc(&mut s, &[], Budget::unlimited());
        assert!(r1.is_sat());
        assert_eq!(d1.incremental_solves, 1);
        assert_eq!(d1.clauses_reused, 0, "first check has nothing to reuse");
        assert_eq!(
            (d1.sat_solves, d1.cache_hits, d1.cache_misses),
            (0, 0, 0),
            "incremental checks must bypass the query cache: {d1:?}"
        );
        s.assert(ctx.bv_ult(ctx.bv_lit_u64(8, 50), x));
        let (r2, d2) = probe_inc(&mut s, &[], Budget::unlimited());
        assert!(r2.is_sat());
        assert_eq!(d2.incremental_solves, 1);
        assert!(d2.clauses_reused > 0, "second check reuses the db: {d2:?}");
        assert_eq!((d2.cache_hits, d2.cache_misses), (0, 0));
    }

    #[test]
    fn incremental_assumption_core_counter() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let mut s = IncrementalSolver::new(&ctx);
        let g = s.new_group();
        s.assert_in(g, ctx.bv_ult(x, ctx.bv_lit_u64(8, 4)));
        s.assert_in(g, ctx.bv_ult(ctx.bv_lit_u64(8, 4), x));
        let (r, d) = probe_inc(&mut s, &[g], Budget::unlimited());
        assert!(r.is_unsat());
        assert_eq!(d.assumption_cores, 1);
        assert_eq!(s.failed_groups(), vec![g]);
    }

    #[test]
    fn incremental_uf_consistency_across_pushes() {
        // Ackermann constraints must pair applications pushed in
        // *different* assert calls.
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let mut s = IncrementalSolver::new(&ctx);
        s.assert(ctx.eq(ctx.apply(f, &[x]), ctx.bv_lit_u64(8, 1)));
        assert!(s.check(&[], Budget::unlimited()).is_sat());
        s.assert(ctx.eq(ctx.apply(f, &[y]), ctx.bv_lit_u64(8, 2)));
        assert!(s.check(&[], Budget::unlimited()).is_sat());
        s.assert(ctx.eq(x, y)); // forces f(x) = f(y), i.e. 1 = 2
        assert!(s.check(&[], Budget::unlimited()).is_unsat());
    }

    #[test]
    fn incremental_handles_constant_folds() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let mut s = IncrementalSolver::new(&ctx);
        s.assert(ctx.tru()); // folds away
        assert!(s.check(&[], Budget::unlimited()).is_sat());
        let g = s.new_group();
        s.assert_in(g, ctx.fals()); // group is inconsistent when active
        assert!(s.check(&[g], Budget::unlimited()).is_unsat());
        assert!(s.check(&[], Budget::unlimited()).is_sat());
        s.assert(ctx.eq(x, x)); // another fold-to-true
        assert!(s.check(&[], Budget::unlimited()).is_sat());
        s.assert(ctx.fals()); // permanently unsat
        assert!(s.check(&[], Budget::unlimited()).is_unsat());
        assert!(s.check(&[g], Budget::unlimited()).is_unsat());
    }
}

//! The user-facing SMT solver: assert terms, check satisfiability under a
//! resource budget, and extract models.

use crate::ackermann::ackermannize;
use crate::bitblast::BitBlaster;
use crate::model::{Model, Value};
use crate::sat::{Budget, SatOutcome};
use crate::term::{Ctx, Sort, TermId};

/// The outcome of an SMT check.
#[derive(Clone, Debug)]
pub enum SmtResult {
    /// Satisfiable, with a model over the assertions' free variables.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The time/conflict budget was exhausted.
    Timeout,
    /// The memory budget was exhausted.
    OutOfMemory,
}

impl SmtResult {
    /// True if the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SmtResult::Sat(_))
    }

    /// True if the result is `Unsat`.
    pub fn is_unsat(&self) -> bool {
        matches!(self, SmtResult::Unsat)
    }

    /// True if the check ran out of resources.
    pub fn is_resource_exhausted(&self) -> bool {
        matches!(self, SmtResult::Timeout | SmtResult::OutOfMemory)
    }

    /// The model, if satisfiable.
    pub fn model(&self) -> Option<&Model> {
        match self {
            SmtResult::Sat(m) => Some(m),
            _ => None,
        }
    }
}

/// A one-shot SMT solver over a [`Ctx`].
///
/// # Examples
///
/// ```
/// use alive2_smt::solver::Solver;
/// use alive2_smt::term::{Ctx, Sort};
/// use alive2_smt::sat::Budget;
///
/// let ctx = Ctx::new();
/// let x = ctx.var("x", Sort::BitVec(8));
/// let five = ctx.bv_lit_u64(8, 5);
/// let mut s = Solver::new(&ctx);
/// s.assert(ctx.bv_ult(x, five));
/// let r = s.check(Budget::unlimited());
/// assert!(r.is_sat());
/// let m = r.model().unwrap();
/// assert!(m.eval_bv(&ctx, x).to_u64() < 5);
/// ```
#[derive(Debug)]
pub struct Solver<'a> {
    ctx: &'a Ctx,
    assertions: Vec<TermId>,
}

impl<'a> Solver<'a> {
    /// Creates a solver over the given context.
    pub fn new(ctx: &'a Ctx) -> Self {
        Solver {
            ctx,
            assertions: Vec::new(),
        }
    }

    /// Adds an assertion (must be boolean-sorted).
    ///
    /// # Panics
    ///
    /// Panics if `t` is not boolean-sorted.
    pub fn assert(&mut self, t: TermId) {
        assert!(self.ctx.sort(t).is_bool(), "assertions must be boolean");
        self.assertions.push(t);
    }

    /// The asserted terms.
    pub fn assertions(&self) -> &[TermId] {
        &self.assertions
    }

    /// Checks satisfiability of the conjunction of assertions.
    ///
    /// The returned model is *partial* in the sense of §3.8 of the paper:
    /// it only assigns variables whose CNF encoding was actually created
    /// (i.e. variables that appear in the formula after simplification).
    pub fn check(&self, budget: Budget) -> SmtResult {
        let _sp = alive2_obs::span(alive2_obs::Phase::Query);
        let result = self.check_inner(budget);
        match &result {
            SmtResult::Sat(_) => alive2_obs::stats::record_smt_sat(),
            SmtResult::Unsat => alive2_obs::stats::record_smt_unsat(),
            SmtResult::Timeout | SmtResult::OutOfMemory => alive2_obs::stats::record_smt_unknown(),
        }
        result
    }

    fn check_inner(&self, budget: Budget) -> SmtResult {
        // Fast path: syntactically trivial.
        let conj = self.ctx.and_many(&self.assertions);
        if let Some(b) = self.ctx.as_bool_lit(conj) {
            return if b {
                SmtResult::Sat(Model::new())
            } else {
                SmtResult::Unsat
            };
        }
        let ack = ackermannize(self.ctx, &[conj]);
        let mut bb = BitBlaster::new(self.ctx);
        for &t in ack.assertions.iter().chain(&ack.constraints) {
            bb.assert_term(t);
        }
        match bb.sat.solve(budget) {
            SatOutcome::Unsat => SmtResult::Unsat,
            SatOutcome::TimedOut => SmtResult::Timeout,
            SatOutcome::OutOfMemory => SmtResult::OutOfMemory,
            SatOutcome::Sat => {
                let mut model = Model::new();
                // Collect free vars of the blasted assertions, including the
                // Ackermann result variables (mapped back to applications by
                // callers that care).
                let roots: Vec<TermId> = ack
                    .assertions
                    .iter()
                    .chain(&ack.constraints)
                    .copied()
                    .collect();
                for vt in self.ctx.free_vars_many(&roots) {
                    let v = self.ctx.as_var(vt).expect("free var is a Var term");
                    match self.ctx.sort(vt) {
                        Sort::Bool => {
                            if bb.bool_var_lit(v).is_some() {
                                model.set(v, Value::Bool(bb.model_bool(v)));
                            }
                        }
                        Sort::BitVec(w) => {
                            if bb.bv_var_lits(v).is_some() {
                                model.set(v, Value::Bv(bb.model_bv(v, w)));
                            }
                        }
                    }
                }
                SmtResult::Sat(model)
            }
        }
    }
}

/// Convenience: checks whether `t` is valid (true in all models) under the
/// budget. Returns `Some(true)` if valid, `Some(false)` if a countermodel
/// exists, `None` on resource exhaustion.
pub fn is_valid(ctx: &Ctx, t: TermId, budget: Budget) -> Option<bool> {
    let mut s = Solver::new(ctx);
    s.assert(ctx.not(t));
    match s.check(budget) {
        SmtResult::Unsat => Some(true),
        SmtResult::Sat(_) => Some(false),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Sort;

    #[test]
    fn sat_with_model() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let sum = ctx.bv_add(x, y);
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(sum, ctx.bv_lit_u64(8, 10)));
        s.assert(ctx.bv_ult(x, ctx.bv_lit_u64(8, 3)));
        let r = s.check(Budget::unlimited());
        let m = r.model().expect("sat");
        let xv = m.eval_bv(&ctx, x).to_u64();
        let yv = m.eval_bv(&ctx, y).to_u64();
        assert!(xv < 3);
        assert_eq!((xv + yv) & 0xff, 10);
    }

    #[test]
    fn unsat_arithmetic() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        // x < x is unsat
        let mut s = Solver::new(&ctx);
        let xp1 = ctx.bv_add(x, ctx.bv_lit_u64(8, 1));
        // x + 1 == x is unsat
        s.assert(ctx.eq(xp1, x));
        assert!(s.check(Budget::unlimited()).is_unsat());
    }

    #[test]
    fn validity_of_commutativity() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        // These fold to the same term by canonical ordering, but check the
        // full pipeline with a non-trivial identity: (x + y) - y == x.
        let t = ctx.eq(ctx.bv_sub(ctx.bv_add(x, y), y), x);
        assert_eq!(is_valid(&ctx, t, Budget::unlimited()), Some(true));
        // x * 2 == x << 1
        let two = ctx.bv_lit_u64(8, 2);
        let one = ctx.bv_lit_u64(8, 1);
        let t2 = ctx.eq(ctx.bv_mul(x, two), ctx.bv_shl(x, one));
        assert_eq!(is_valid(&ctx, t2, Budget::unlimited()), Some(true));
        // x - 1 == x + 1 is invalid
        let t3 = ctx.eq(ctx.bv_sub(x, one), ctx.bv_add(x, one));
        assert_eq!(is_valid(&ctx, t3, Budget::unlimited()), Some(false));
    }

    #[test]
    fn uf_consistency() {
        let ctx = Ctx::new();
        let f = ctx.func("f", &[Sort::BitVec(8)], Sort::BitVec(8));
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        let fx = ctx.apply(f, &[x]);
        let fy = ctx.apply(f, &[y]);
        let mut s = Solver::new(&ctx);
        s.assert(ctx.eq(x, y));
        s.assert(ctx.ne(fx, fy));
        assert!(s.check(Budget::unlimited()).is_unsat());
        // Without x == y, f(x) != f(y) is satisfiable.
        let mut s2 = Solver::new(&ctx);
        s2.assert(ctx.ne(fx, fy));
        assert!(s2.check(Budget::unlimited()).is_sat());
    }

    #[test]
    fn trivial_paths() {
        let ctx = Ctx::new();
        let s = Solver::new(&ctx);
        assert!(s.check(Budget::unlimited()).is_sat()); // empty = true
        let mut s2 = Solver::new(&ctx);
        s2.assert(ctx.fals());
        assert!(s2.check(Budget::unlimited()).is_unsat());
    }

    #[test]
    fn partial_model_omits_simplified_vars() {
        let ctx = Ctx::new();
        let x = ctx.var("x", Sort::BitVec(8));
        let y = ctx.var("y", Sort::BitVec(8));
        // y * 0 removes y from the formula entirely.
        let t = ctx.eq(ctx.bv_add(x, ctx.bv_mul(y, ctx.bv_lit_u64(8, 0))), x);
        let mut s = Solver::new(&ctx);
        s.assert(t);
        match s.check(Budget::unlimited()) {
            SmtResult::Sat(m) => {
                assert!(!m.contains(ctx.as_var(y).unwrap()));
            }
            other => panic!("expected sat, got {other:?}"),
        }
    }
}

//! Fixed-width, arbitrary-precision bit-vector values.
//!
//! [`BitVec`] is the concrete value domain shared by the SMT term language,
//! the bit-blaster, model evaluation, and IR constant folding. Semantics
//! follow SMT-LIB's `QF_BV` theory (and therefore LLVM's wrapping integer
//! semantics): all arithmetic is modulo `2^width`, `udiv`/`urem` by zero are
//! total (`all-ones` / dividend), and `sdiv`/`srem` truncate toward zero.

use std::fmt;

/// A bit-vector value with a fixed width of at least one bit.
///
/// Bits beyond `width` are kept zero (a canonical form), so `Eq` and `Hash`
/// can be derived structurally.
///
/// # Examples
///
/// ```
/// use alive2_smt::bv::BitVec;
///
/// let a = BitVec::from_u64(8, 250);
/// let b = BitVec::from_u64(8, 10);
/// assert_eq!(a.add(&b), BitVec::from_u64(8, 4)); // wraps mod 2^8
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitVec {
    width: u32,
    /// Little-endian 64-bit words; always exactly `words_for(width)` long.
    words: Vec<u64>,
}

fn words_for(width: u32) -> usize {
    ((width as usize) + 63) / 64
}

impl BitVec {
    /// Creates a zero value of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn zero(width: u32) -> Self {
        assert!(width > 0, "bit-vector width must be positive");
        BitVec {
            width,
            words: vec![0; words_for(width)],
        }
    }

    /// Creates the value 1 of the given width.
    pub fn one(width: u32) -> Self {
        Self::from_u64(width, 1)
    }

    /// Creates the all-ones value (i.e. `-1` / `UMAX`) of the given width.
    pub fn all_ones(width: u32) -> Self {
        let mut v = Self::zero(width);
        for w in &mut v.words {
            *w = u64::MAX;
        }
        v.canonicalize();
        v
    }

    /// Creates a value from the low bits of `val`, truncated to `width`.
    pub fn from_u64(width: u32, val: u64) -> Self {
        let mut v = Self::zero(width);
        v.words[0] = val;
        v.canonicalize();
        v
    }

    /// Creates a value from `val` interpreted in two's complement.
    pub fn from_i64(width: u32, val: i64) -> Self {
        let mut v = Self::zero(width);
        let ext = if val < 0 { u64::MAX } else { 0 };
        for (i, w) in v.words.iter_mut().enumerate() {
            *w = if i == 0 { val as u64 } else { ext };
        }
        v.canonicalize();
        v
    }

    /// Creates a value from `val` interpreted in two's complement.
    pub fn from_i128(width: u32, val: i128) -> Self {
        let mut v = Self::zero(width);
        let ext = if val < 0 { u64::MAX } else { 0 };
        for (i, w) in v.words.iter_mut().enumerate() {
            *w = match i {
                0 => val as u64,
                1 => (val >> 64) as u64,
                _ => ext,
            };
        }
        v.canonicalize();
        v
    }

    /// Creates a value from little-endian words, truncated to `width`.
    pub fn from_words(width: u32, src: &[u64]) -> Self {
        let mut v = Self::zero(width);
        for (dst, s) in v.words.iter_mut().zip(src) {
            *dst = *s;
        }
        v.canonicalize();
        v
    }

    /// Creates a value from bits, least significant first.
    pub fn from_bits(bits: &[bool]) -> Self {
        assert!(!bits.is_empty(), "bit-vector width must be positive");
        let mut v = Self::zero(bits.len() as u32);
        for (i, &b) in bits.iter().enumerate() {
            if b {
                v.words[i / 64] |= 1u64 << (i % 64);
            }
        }
        v
    }

    /// The signed minimum value (`100...0`).
    pub fn min_signed(width: u32) -> Self {
        let mut v = Self::zero(width);
        v.set_bit(width - 1, true);
        v
    }

    /// The signed maximum value (`011...1`).
    pub fn max_signed(width: u32) -> Self {
        let mut v = Self::all_ones(width);
        v.set_bit(width - 1, false);
        v
    }

    fn canonicalize(&mut self) {
        let rem = self.width % 64;
        if rem != 0 {
            let last = self.words.len() - 1;
            self.words[last] &= (1u64 << rem) - 1;
        }
    }

    /// Width of this value in bits.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// The little-endian 64-bit words backing this value.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Reads bit `i` (0 = least significant).
    ///
    /// # Panics
    ///
    /// Panics if `i >= width`.
    pub fn bit(&self, i: u32) -> bool {
        assert!(i < self.width);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i` (0 = least significant).
    pub fn set_bit(&mut self, i: u32, val: bool) {
        assert!(i < self.width);
        let w = (i / 64) as usize;
        let mask = 1u64 << (i % 64);
        if val {
            self.words[w] |= mask;
        } else {
            self.words[w] &= !mask;
        }
    }

    /// The sign bit (most significant bit).
    pub fn sign_bit(&self) -> bool {
        self.bit(self.width - 1)
    }

    /// True if every bit is zero.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True if this is the value 1.
    pub fn is_one(&self) -> bool {
        self.words[0] == 1 && self.words[1..].iter().all(|&w| w == 0)
    }

    /// True if every bit is one.
    pub fn is_all_ones(&self) -> bool {
        *self == Self::all_ones(self.width)
    }

    /// The low 64 bits of the value.
    pub fn to_u64(&self) -> u64 {
        self.words[0]
    }

    /// The value as an `i64`, sign-extended from `width`. Widths above 64
    /// truncate to the low word (a lossy conversion either way).
    pub fn to_i64(&self) -> i64 {
        if self.width >= 64 {
            self.words[0] as i64
        } else if self.sign_bit() {
            (self.words[0] | !((1u64 << self.width) - 1)) as i64
        } else {
            self.words[0] as i64
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Number of leading (most significant) zero bits.
    pub fn leading_zeros(&self) -> u32 {
        for i in (0..self.width).rev() {
            if self.bit(i) {
                return self.width - 1 - i;
            }
        }
        self.width
    }

    /// Number of trailing (least significant) zero bits.
    pub fn trailing_zeros(&self) -> u32 {
        for i in 0..self.width {
            if self.bit(i) {
                return i;
            }
        }
        self.width
    }

    /// True if the value is a power of two (exactly one set bit).
    pub fn is_power_of_two(&self) -> bool {
        self.count_ones() == 1
    }

    /// Bitwise NOT.
    pub fn not(&self) -> Self {
        let mut r = self.clone();
        for w in &mut r.words {
            *w = !*w;
        }
        r.canonicalize();
        r
    }

    /// Bitwise AND.
    pub fn and(&self, rhs: &Self) -> Self {
        self.zip(rhs, |a, b| a & b)
    }

    /// Bitwise OR.
    pub fn or(&self, rhs: &Self) -> Self {
        self.zip(rhs, |a, b| a | b)
    }

    /// Bitwise XOR.
    pub fn xor(&self, rhs: &Self) -> Self {
        self.zip(rhs, |a, b| a ^ b)
    }

    fn zip(&self, rhs: &Self, f: impl Fn(u64, u64) -> u64) -> Self {
        assert_eq!(self.width, rhs.width, "width mismatch");
        let mut r = self.clone();
        for (a, b) in r.words.iter_mut().zip(&rhs.words) {
            *a = f(*a, *b);
        }
        r.canonicalize();
        r
    }

    /// Wrapping addition.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(self.width, rhs.width, "width mismatch");
        let mut r = Self::zero(self.width);
        let mut carry = 0u64;
        for i in 0..r.words.len() {
            let (s1, c1) = self.words[i].overflowing_add(rhs.words[i]);
            let (s2, c2) = s1.overflowing_add(carry);
            r.words[i] = s2;
            carry = (c1 as u64) + (c2 as u64);
        }
        r.canonicalize();
        r
    }

    /// Wrapping subtraction.
    pub fn sub(&self, rhs: &Self) -> Self {
        self.add(&rhs.neg())
    }

    /// Two's complement negation.
    pub fn neg(&self) -> Self {
        self.not().add(&Self::one(self.width))
    }

    /// Wrapping multiplication.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(self.width, rhs.width, "width mismatch");
        let n = self.words.len();
        let mut acc = vec![0u64; n];
        for i in 0..n {
            let mut carry = 0u128;
            for j in 0..n - i {
                let cur =
                    acc[i + j] as u128 + (self.words[i] as u128) * (rhs.words[j] as u128) + carry;
                acc[i + j] = cur as u64;
                carry = cur >> 64;
            }
        }
        let mut r = BitVec {
            width: self.width,
            words: acc,
        };
        r.canonicalize();
        r
    }

    /// Unsigned comparison `self < rhs`.
    pub fn ult(&self, rhs: &Self) -> bool {
        assert_eq!(self.width, rhs.width, "width mismatch");
        for i in (0..self.words.len()).rev() {
            if self.words[i] != rhs.words[i] {
                return self.words[i] < rhs.words[i];
            }
        }
        false
    }

    /// Unsigned comparison `self <= rhs`.
    pub fn ule(&self, rhs: &Self) -> bool {
        !rhs.ult(self)
    }

    /// Signed comparison `self < rhs`.
    pub fn slt(&self, rhs: &Self) -> bool {
        match (self.sign_bit(), rhs.sign_bit()) {
            (true, false) => true,
            (false, true) => false,
            _ => self.ult(rhs),
        }
    }

    /// Signed comparison `self <= rhs`.
    pub fn sle(&self, rhs: &Self) -> bool {
        !rhs.slt(self)
    }

    /// Unsigned division; division by zero yields all-ones (SMT-LIB).
    pub fn udiv(&self, rhs: &Self) -> Self {
        if rhs.is_zero() {
            return Self::all_ones(self.width);
        }
        self.udivrem(rhs).0
    }

    /// Unsigned remainder; remainder by zero yields the dividend (SMT-LIB).
    pub fn urem(&self, rhs: &Self) -> Self {
        if rhs.is_zero() {
            return self.clone();
        }
        self.udivrem(rhs).1
    }

    fn udivrem(&self, rhs: &Self) -> (Self, Self) {
        debug_assert!(!rhs.is_zero());
        let mut quot = Self::zero(self.width);
        let mut rem = Self::zero(self.width);
        for i in (0..self.width).rev() {
            rem = rem.shl_amount(1);
            rem.set_bit(0, self.bit(i));
            if rhs.ule(&rem) {
                rem = rem.sub(rhs);
                quot.set_bit(i, true);
            }
        }
        (quot, rem)
    }

    /// Signed division truncating toward zero; by-zero follows SMT-LIB's
    /// `bvsdiv` totalization: `x sdiv 0 = x < 0 ? 1 : -1`. `INT_MIN sdiv -1`
    /// wraps back to `INT_MIN` (the `neg()` calls below are modular).
    pub fn sdiv(&self, rhs: &Self) -> Self {
        if rhs.is_zero() {
            return if self.sign_bit() {
                Self::one(self.width)
            } else {
                Self::all_ones(self.width)
            };
        }
        let (sa, sb) = (self.sign_bit(), rhs.sign_bit());
        let a = if sa { self.neg() } else { self.clone() };
        let b = if sb { rhs.neg() } else { rhs.clone() };
        let q = a.udiv(&b);
        if sa != sb {
            q.neg()
        } else {
            q
        }
    }

    /// Signed remainder (sign follows the dividend); by-zero yields the
    /// dividend (SMT-LIB bvsrem totalization).
    pub fn srem(&self, rhs: &Self) -> Self {
        if rhs.is_zero() {
            return self.clone();
        }
        let sa = self.sign_bit();
        let a = if sa { self.neg() } else { self.clone() };
        let b = if rhs.sign_bit() {
            rhs.neg()
        } else {
            rhs.clone()
        };
        let r = a.urem(&b);
        if sa {
            r.neg()
        } else {
            r
        }
    }

    fn shl_amount(&self, amt: u32) -> Self {
        let mut r = Self::zero(self.width);
        for i in amt..self.width {
            if self.bit(i - amt) {
                r.set_bit(i, true);
            }
        }
        r
    }

    /// Logical shift left; shifts `>= width` yield zero.
    pub fn shl(&self, amt: &Self) -> Self {
        match amt.shift_amount(self.width) {
            None => Self::zero(self.width),
            Some(a) => self.shl_amount(a),
        }
    }

    /// Logical shift right; shifts `>= width` yield zero.
    pub fn lshr(&self, amt: &Self) -> Self {
        match amt.shift_amount(self.width) {
            None => Self::zero(self.width),
            Some(a) => {
                let mut r = Self::zero(self.width);
                for i in 0..self.width - a {
                    if self.bit(i + a) {
                        r.set_bit(i, true);
                    }
                }
                r
            }
        }
    }

    /// Arithmetic shift right; shifts `>= width` yield 0 or all-ones
    /// depending on the sign bit.
    pub fn ashr(&self, amt: &Self) -> Self {
        let sign = self.sign_bit();
        let fill = |r: &mut Self, from: u32| {
            if sign {
                for i in from..r.width {
                    r.set_bit(i, true);
                }
            }
        };
        match amt.shift_amount(self.width) {
            None => {
                let mut r = Self::zero(self.width);
                fill(&mut r, 0);
                r
            }
            Some(a) => {
                let mut r = self.lshr(amt);
                fill(&mut r, self.width - a);
                r
            }
        }
    }

    /// Interprets `self` as a shift amount: `Some(a)` if `a < bound`.
    fn shift_amount(&self, bound: u32) -> Option<u32> {
        if self.words[1..].iter().any(|&w| w != 0) || self.words[0] >= bound as u64 {
            None
        } else {
            Some(self.words[0] as u32)
        }
    }

    /// Zero-extends to `new_width`.
    ///
    /// # Panics
    ///
    /// Panics if `new_width < width`.
    pub fn zext(&self, new_width: u32) -> Self {
        assert!(new_width >= self.width);
        let mut r = Self::zero(new_width);
        for (dst, src) in r.words.iter_mut().zip(&self.words) {
            *dst = *src;
        }
        r
    }

    /// Sign-extends to `new_width`.
    pub fn sext(&self, new_width: u32) -> Self {
        assert!(new_width >= self.width);
        let mut r = self.zext(new_width);
        if self.sign_bit() {
            for i in self.width..new_width {
                r.set_bit(i, true);
            }
        }
        r
    }

    /// Truncates to the low `new_width` bits.
    pub fn trunc(&self, new_width: u32) -> Self {
        assert!(new_width <= self.width && new_width > 0);
        let mut r = BitVec {
            width: new_width,
            words: self.words[..words_for(new_width)].to_vec(),
        };
        r.canonicalize();
        r
    }

    /// Extracts bits `[lo, hi]` inclusive (SMT-LIB `extract`).
    pub fn extract(&self, hi: u32, lo: u32) -> Self {
        assert!(hi >= lo && hi < self.width);
        let mut r = Self::zero(hi - lo + 1);
        for i in lo..=hi {
            if self.bit(i) {
                r.set_bit(i - lo, true);
            }
        }
        r
    }

    /// Concatenation: `self` becomes the high bits (SMT-LIB `concat`).
    pub fn concat(&self, low: &Self) -> Self {
        let mut r = low.zext(self.width + low.width);
        for i in 0..self.width {
            if self.bit(i) {
                r.set_bit(low.width + i, true);
            }
        }
        r
    }

    /// Byte-swaps the value.
    ///
    /// # Panics
    ///
    /// Panics if the width is not a multiple of 8.
    pub fn bswap(&self) -> Self {
        assert_eq!(self.width % 8, 0, "bswap requires a whole number of bytes");
        let nbytes = self.width / 8;
        let mut r = Self::zero(self.width);
        for b in 0..nbytes {
            let src = self.extract(b * 8 + 7, b * 8);
            for i in 0..8 {
                if src.bit(i) {
                    r.set_bit((nbytes - 1 - b) * 8 + i, true);
                }
            }
        }
        r
    }

    /// Reverses the bit order of the value.
    pub fn bitreverse(&self) -> Self {
        let mut r = Self::zero(self.width);
        for i in 0..self.width {
            if self.bit(i) {
                r.set_bit(self.width - 1 - i, true);
            }
        }
        r
    }

    /// Rotates left by `amt % width` bits.
    pub fn rotl(&self, amt: u32) -> Self {
        let a = amt % self.width;
        let mut r = Self::zero(self.width);
        for i in 0..self.width {
            if self.bit(i) {
                r.set_bit((i + a) % self.width, true);
            }
        }
        r
    }

    /// True if `self + rhs` overflows unsigned.
    pub fn uadd_overflows(&self, rhs: &Self) -> bool {
        self.add(rhs).ult(self)
    }

    /// True if `self + rhs` overflows signed.
    pub fn sadd_overflows(&self, rhs: &Self) -> bool {
        let r = self.add(rhs);
        self.sign_bit() == rhs.sign_bit() && r.sign_bit() != self.sign_bit()
    }

    /// True if `self - rhs` overflows unsigned (i.e. `self < rhs`).
    pub fn usub_overflows(&self, rhs: &Self) -> bool {
        self.ult(rhs)
    }

    /// True if `self - rhs` overflows signed.
    pub fn ssub_overflows(&self, rhs: &Self) -> bool {
        let r = self.sub(rhs);
        self.sign_bit() != rhs.sign_bit() && r.sign_bit() != self.sign_bit()
    }

    /// True if `self * rhs` overflows unsigned.
    pub fn umul_overflows(&self, rhs: &Self) -> bool {
        let wide = self.zext(self.width * 2).mul(&rhs.zext(self.width * 2));
        !wide.extract(self.width * 2 - 1, self.width).is_zero()
    }

    /// True if `self * rhs` overflows signed.
    pub fn smul_overflows(&self, rhs: &Self) -> bool {
        let wide = self.sext(self.width * 2).mul(&rhs.sext(self.width * 2));
        let narrow = wide.trunc(self.width).sext(self.width * 2);
        wide != narrow
    }

    /// Formats as a hexadecimal string without a leading `0x`.
    pub fn to_hex(&self) -> String {
        let mut s = String::new();
        let nibbles = (self.width + 3) / 4;
        for n in (0..nibbles).rev() {
            let lo = n * 4;
            let hi = (lo + 3).min(self.width - 1);
            let v = self.extract(hi, lo).to_u64();
            s.push(std::char::from_digit(v as u32, 16).unwrap());
        }
        s
    }
}

impl fmt::Debug for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bv{}(0x{})", self.width, self.to_hex())
    }
}

impl fmt::Display for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.width <= 64 {
            write!(f, "{}", self.to_u64())
        } else {
            write!(f, "0x{}", self.to_hex())
        }
    }
}

impl fmt::LowerHex for BitVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_canonical_form() {
        let v = BitVec::from_u64(4, 0xff);
        assert_eq!(v.to_u64(), 0xf);
        assert_eq!(BitVec::from_i64(8, -1), BitVec::all_ones(8));
        assert_eq!(BitVec::from_i64(128, -1), BitVec::all_ones(128));
        assert!(BitVec::zero(7).is_zero());
        assert!(BitVec::one(7).is_one());
    }

    #[test]
    #[should_panic]
    fn zero_width_panics() {
        BitVec::zero(0);
    }

    #[test]
    fn add_sub_wraps() {
        let w = 8;
        for (a, b) in [(200u64, 100u64), (255, 1), (0, 0), (127, 127)] {
            let x = BitVec::from_u64(w, a);
            let y = BitVec::from_u64(w, b);
            assert_eq!(x.add(&y).to_u64(), (a + b) & 0xff);
            assert_eq!(x.sub(&y).to_u64(), a.wrapping_sub(b) & 0xff);
        }
    }

    #[test]
    fn wide_arithmetic_carries_across_words() {
        let a = BitVec::from_words(128, &[u64::MAX, 0]);
        let one = BitVec::one(128);
        let sum = a.add(&one);
        assert_eq!(sum.words(), &[0, 1]);
        assert_eq!(sum.sub(&one), a);
    }

    #[test]
    fn mul_matches_u64() {
        for (a, b) in [(3u64, 7u64), (0xff, 0xff), (1 << 20, 1 << 21)] {
            let x = BitVec::from_u64(32, a);
            let y = BitVec::from_u64(32, b);
            assert_eq!(x.mul(&y).to_u64(), a.wrapping_mul(b) & 0xffff_ffff);
        }
    }

    #[test]
    fn division_matches_u64_and_i64() {
        for (a, b) in [(100i64, 7i64), (-100, 7), (100, -7), (-100, -7), (7, 100)] {
            let x = BitVec::from_i64(16, a);
            let y = BitVec::from_i64(16, b);
            assert_eq!(x.sdiv(&y).to_i64(), a / b, "{a} sdiv {b}");
            assert_eq!(x.srem(&y).to_i64(), a % b, "{a} srem {b}");
        }
        let x = BitVec::from_u64(16, 50000);
        let y = BitVec::from_u64(16, 123);
        assert_eq!(x.udiv(&y).to_u64(), 50000 / 123);
        assert_eq!(x.urem(&y).to_u64(), 50000 % 123);
    }

    #[test]
    fn division_by_zero_totalization() {
        let x = BitVec::from_u64(8, 42);
        let z = BitVec::zero(8);
        assert_eq!(x.udiv(&z), BitVec::all_ones(8));
        assert_eq!(x.urem(&z), x);
        assert_eq!(x.sdiv(&z), BitVec::all_ones(8));
        assert_eq!(BitVec::from_i64(8, -42).sdiv(&z), BitVec::one(8));
        assert_eq!(x.srem(&z), x);
    }

    #[test]
    fn shifts() {
        let x = BitVec::from_u64(8, 0b1001_0110);
        assert_eq!(x.shl(&BitVec::from_u64(8, 2)).to_u64(), 0b0101_1000);
        assert_eq!(x.lshr(&BitVec::from_u64(8, 2)).to_u64(), 0b0010_0101);
        assert_eq!(x.ashr(&BitVec::from_u64(8, 2)).to_u64(), 0b1110_0101);
        assert_eq!(x.shl(&BitVec::from_u64(8, 8)).to_u64(), 0);
        assert_eq!(x.lshr(&BitVec::from_u64(8, 200)).to_u64(), 0);
        assert_eq!(x.ashr(&BitVec::from_u64(8, 200)), BitVec::all_ones(8));
    }

    #[test]
    fn comparisons() {
        let a = BitVec::from_i64(8, -3);
        let b = BitVec::from_i64(8, 5);
        assert!(a.slt(&b));
        assert!(!a.ult(&b)); // 253 > 5 unsigned
        assert!(b.ule(&a));
        assert!(a.sle(&a));
    }

    #[test]
    fn extend_truncate_extract_concat() {
        let x = BitVec::from_i64(8, -2); // 0xfe
        assert_eq!(x.zext(16).to_u64(), 0xfe);
        assert_eq!(x.sext(16).to_u64(), 0xfffe);
        assert_eq!(x.trunc(4).to_u64(), 0xe);
        assert_eq!(x.extract(7, 4).to_u64(), 0xf);
        let hi = BitVec::from_u64(8, 0xab);
        let lo = BitVec::from_u64(8, 0xcd);
        assert_eq!(hi.concat(&lo).to_u64(), 0xabcd);
    }

    #[test]
    fn bit_counting() {
        let x = BitVec::from_u64(16, 0b0000_1010_0000_0000);
        assert_eq!(x.count_ones(), 2);
        assert_eq!(x.leading_zeros(), 4);
        assert_eq!(x.trailing_zeros(), 9);
        assert_eq!(BitVec::zero(16).leading_zeros(), 16);
        assert!(BitVec::from_u64(16, 0x400).is_power_of_two());
    }

    #[test]
    fn bswap_and_bitreverse() {
        let x = BitVec::from_u64(32, 0x1234_5678);
        assert_eq!(x.bswap().to_u64(), 0x7856_3412);
        let y = BitVec::from_u64(8, 0b1000_0001);
        assert_eq!(y.bitreverse().to_u64(), 0b1000_0001);
        assert_eq!(BitVec::from_u64(8, 0b1100_0000).bitreverse().to_u64(), 0b11);
    }

    #[test]
    fn overflow_predicates() {
        let w = 8;
        let a = BitVec::from_u64(w, 200);
        let b = BitVec::from_u64(w, 100);
        assert!(a.uadd_overflows(&b));
        assert!(!a.sadd_overflows(&b)); // -56 + 100 fits
        let c = BitVec::from_i64(w, 100);
        let d = BitVec::from_i64(w, 100);
        assert!(c.sadd_overflows(&d));
        assert!(c.smul_overflows(&d));
        assert!(c.umul_overflows(&d)); // 10000 > 255
        assert!(BitVec::from_u64(w, 3).usub_overflows(&BitVec::from_u64(w, 4)));
        assert!(BitVec::min_signed(w).ssub_overflows(&BitVec::one(w)));
    }

    #[test]
    fn hex_formatting() {
        assert_eq!(BitVec::from_u64(12, 0xabc).to_hex(), "abc");
        assert_eq!(format!("{:?}", BitVec::from_u64(8, 255)), "bv8(0xff)");
    }

    #[test]
    fn signed_extremes() {
        assert_eq!(BitVec::min_signed(8).to_i64(), -128);
        assert_eq!(BitVec::max_signed(8).to_i64(), 127);
        // INT_MIN sdiv -1 wraps to INT_MIN (SMT-LIB semantics).
        let m = BitVec::min_signed(8);
        assert_eq!(m.sdiv(&BitVec::all_ones(8)), m);
        // INT_MIN srem -1 is 0 (the one srem case where neg() wraps).
        assert_eq!(m.srem(&BitVec::all_ones(8)), BitVec::zero(8));
    }

    /// Exhaustive differential check of every binary operation against a
    /// `u128`/`i128` reference at width 4 (256 operand pairs). This is the
    /// oracle the rewrite rules inherit their identities from, so any
    /// divergence here is a soundness bug twice over.
    #[test]
    fn exhaustive_width4_vs_i128_reference() {
        const W: u32 = 4;
        const M: u128 = (1 << W) - 1;
        let signed = |v: u64| -> i128 {
            let v = v as i128;
            if v >= 1 << (W - 1) {
                v - (1 << W)
            } else {
                v
            }
        };
        for a in 0..=M as u64 {
            for b in 0..=M as u64 {
                let x = BitVec::from_u64(W, a);
                let y = BitVec::from_u64(W, b);
                let (sa, sb) = (signed(a), signed(b));
                let chk = |got: &BitVec, want: u128, op: &str| {
                    assert_eq!(
                        got.to_u64() as u128,
                        want & M,
                        "{a} {op} {b} (signed {sa} {op} {sb})"
                    );
                };
                chk(&x.add(&y), (a + b) as u128, "add");
                chk(&x.sub(&y), (a as u128).wrapping_sub(b as u128), "sub");
                chk(&x.mul(&y), (a * b) as u128, "mul");
                chk(&x.and(&y), (a & b) as u128, "and");
                chk(&x.or(&y), (a | b) as u128, "or");
                chk(&x.xor(&y), (a ^ b) as u128, "xor");
                chk(&x.not(), !(a as u128), "not");
                chk(&x.neg(), (a as u128).wrapping_neg(), "neg");
                // SMT-LIB total division semantics.
                let udiv = if b == 0 { M } else { (a / b) as u128 };
                let urem = if b == 0 { a as u128 } else { (a % b) as u128 };
                chk(&x.udiv(&y), udiv, "udiv");
                chk(&x.urem(&y), urem, "urem");
                let sdiv = if sb == 0 {
                    if sa < 0 {
                        1
                    } else {
                        -1
                    }
                } else {
                    sa / sb // i128 can't overflow; wrap is applied by & M
                };
                let srem = if sb == 0 { sa } else { sa % sb };
                chk(&x.sdiv(&y), sdiv as u128, "sdiv");
                chk(&x.srem(&y), srem as u128, "srem");
                // Shifts: amounts >= width saturate.
                let shl = if b >= W as u64 { 0 } else { (a as u128) << b };
                let lshr = if b >= W as u64 { 0 } else { (a >> b) as u128 };
                let ashr = if b >= W as u64 {
                    if sa < 0 {
                        M
                    } else {
                        0
                    }
                } else {
                    (sa >> b) as u128
                };
                chk(&x.shl(&y), shl, "shl");
                chk(&x.lshr(&y), lshr, "lshr");
                chk(&x.ashr(&y), ashr, "ashr");
                // Comparisons.
                assert_eq!(x.ult(&y), a < b, "{a} ult {b}");
                assert_eq!(x.ule(&y), a <= b, "{a} ule {b}");
                assert_eq!(x.slt(&y), sa < sb, "{sa} slt {sb}");
                assert_eq!(x.sle(&y), sa <= sb, "{sa} sle {sb}");
                // Overflow predicates.
                assert_eq!(x.uadd_overflows(&y), a + b > M as u64, "{a}+{b} uov");
                let sadd = sa + sb;
                assert_eq!(
                    x.sadd_overflows(&y),
                    !(-(1 << (W - 1))..1 << (W - 1)).contains(&sadd),
                    "{sa}+{sb} sov"
                );
                assert_eq!(x.usub_overflows(&y), a < b, "{a}-{b} uov");
                let ssub = sa - sb;
                assert_eq!(
                    x.ssub_overflows(&y),
                    !(-(1 << (W - 1))..1 << (W - 1)).contains(&ssub),
                    "{sa}-{sb} sov"
                );
                assert_eq!(x.umul_overflows(&y), a * b > M as u64, "{a}*{b} uov");
                let smul = sa * sb;
                assert_eq!(
                    x.smul_overflows(&y),
                    !(-(1 << (W - 1))..1 << (W - 1)).contains(&smul),
                    "{sa}*{sb} sov"
                );
            }
        }
    }

    /// Shift amounts crossing the 64-bit word boundary: a shift amount
    /// that is huge (non-zero high words) must saturate, not be read mod
    /// 2^64 from the low word.
    #[test]
    fn wide_shift_amounts_saturate() {
        let x = BitVec::from_words(128, &[0x1234, 0x5678]);
        // amount with only a high word set: >= width, so saturates.
        let huge = BitVec::from_words(128, &[0, 1]);
        assert!(x.shl(&huge).is_zero());
        assert!(x.lshr(&huge).is_zero());
        assert!(x.ashr(&huge).is_zero()); // sign bit clear
        let neg = BitVec::all_ones(128);
        assert_eq!(neg.ashr(&huge), neg); // sign bit set: fills with ones
                                          // amount exactly = width.
        let w = BitVec::from_u64(128, 128);
        assert!(x.shl(&w).is_zero());
        // amount = width - 1 still shifts (only bit 0 survives).
        let w1 = BitVec::from_u64(128, 127);
        let odd = BitVec::from_words(128, &[0x1235, 0x5678]);
        assert_eq!(odd.shl(&w1), {
            let mut v = BitVec::zero(128);
            v.set_bit(127, true);
            v
        });
        assert!(x.shl(&w1).is_zero()); // bit 0 of x is clear
    }
}

//! SMT substrate for Alive2-rs: the stand-in for Z3 in the paper's stack.
//!
//! The crate provides everything the translation validator needs from an
//! SMT solver, built from scratch:
//!
//! - [`bv`]: fixed-width arbitrary-precision bit-vector values;
//! - [`term`]: a hash-consed term DAG over booleans and bit-vectors with
//!   simplifying smart constructors;
//! - [`ackermann`]: elimination of uninterpreted functions;
//! - [`bitblast`]: Tseitin conversion to CNF;
//! - [`sat`]: a CDCL SAT solver with conflict/time/memory budgets;
//! - [`solver`]: the assert/check/model facade;
//! - [`model`]: models and a concrete evaluator;
//! - [`rewrite`]: saturation-style term simplification that discharges
//!   many obligations before any CNF exists;
//! - [`exists_forall`]: CEGQI for the ∃∀ refinement queries of §5.
//!
//! # Examples
//!
//! Prove that `(x + y) - y == x` over 8-bit vectors:
//!
//! ```
//! use alive2_smt::prelude::*;
//!
//! let ctx = Ctx::new();
//! let x = ctx.var("x", Sort::BitVec(8));
//! let y = ctx.var("y", Sort::BitVec(8));
//! let claim = ctx.eq(ctx.bv_sub(ctx.bv_add(x, y), y), x);
//! assert_eq!(is_valid(&ctx, claim, Budget::unlimited()), Some(true));
//! ```

pub mod ackermann;
pub mod bitblast;
pub mod bv;
pub mod cache;
pub mod exists_forall;
pub mod model;
pub mod rewrite;
pub mod sat;
pub mod solver;
pub mod term;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use crate::bv::BitVec;
    pub use crate::exists_forall::{solve_exists_forall, EfConfig, EfResult};
    pub use crate::model::{Model, Value};
    pub use crate::sat::Budget;
    pub use crate::solver::{is_valid, SmtResult, Solver};
    pub use crate::term::{Ctx, FuncId, Op, Sort, TermId, VarId};
}

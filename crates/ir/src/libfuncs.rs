//! Coarse-grained semantics for recognized library functions (paper §3.8).
//!
//! LLVM equips optimization passes with predicates about well-known library
//! functions — "always returns non-null", "never returns", "only reads its
//! arguments" — and transforms calls between them (e.g. `printf("s\n")` →
//! `puts("s")`). The validator must mirror this knowledge or such rewrites
//! look like refinement failures. Each entry here captures the predicates
//! the refinement check consumes.

/// Memory behavior of a library call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemEffect {
    /// Reads and writes arbitrary memory.
    ReadWrite,
    /// Only reads memory.
    ReadOnly,
    /// Touches no memory at all.
    None,
    /// Only accesses memory through its pointer arguments.
    ArgMemOnly,
}

/// The knowledge record for one library function.
#[derive(Clone, Copy, Debug)]
pub struct LibFunc {
    /// Symbol name.
    pub name: &'static str,
    /// The function never returns (e.g. `exit`).
    pub noreturn: bool,
    /// The function always terminates.
    pub willreturn: bool,
    /// Memory behavior.
    pub mem: MemEffect,
    /// The return value is never null.
    pub returns_nonnull: bool,
    /// The call allocates and returns a fresh memory block (or null).
    pub allocator: bool,
    /// The call frees its pointer argument.
    pub deallocator: bool,
    /// `printf`-to-`puts`-style equivalence class: calls in the same class
    /// with compatible arguments may be interchanged by the compiler.
    pub io_class: Option<&'static str>,
}

const fn lf(name: &'static str) -> LibFunc {
    LibFunc {
        name,
        noreturn: false,
        willreturn: false,
        mem: MemEffect::ReadWrite,
        returns_nonnull: false,
        allocator: false,
        deallocator: false,
        io_class: None,
    }
}

/// The knowledge base. The real Alive2 special-cases 117 functions; we
/// cover the classes its evaluation exercises (stdio, allocation, string,
/// math, process control).
pub static LIBFUNCS: &[LibFunc] = &[
    // -- process control ---------------------------------------------------
    LibFunc {
        noreturn: true,
        ..lf("exit")
    },
    LibFunc {
        noreturn: true,
        ..lf("_exit")
    },
    LibFunc {
        noreturn: true,
        ..lf("abort")
    },
    LibFunc {
        noreturn: true,
        ..lf("longjmp")
    },
    LibFunc {
        noreturn: true,
        ..lf("__assert_fail")
    },
    // -- allocation ---------------------------------------------------------
    LibFunc {
        allocator: true,
        willreturn: true,
        ..lf("malloc")
    },
    LibFunc {
        allocator: true,
        willreturn: true,
        ..lf("calloc")
    },
    LibFunc {
        allocator: true,
        willreturn: true,
        ..lf("aligned_alloc")
    },
    LibFunc {
        allocator: true,
        willreturn: true,
        ..lf("_Znwm")
    }, // operator new
    LibFunc {
        allocator: true,
        willreturn: true,
        ..lf("_Znam")
    }, // operator new[]
    LibFunc {
        deallocator: true,
        willreturn: true,
        ..lf("free")
    },
    LibFunc {
        deallocator: true,
        willreturn: true,
        ..lf("_ZdlPv")
    }, // operator delete
    LibFunc {
        allocator: true,
        deallocator: true,
        ..lf("realloc")
    },
    // -- stdio ---------------------------------------------------------------
    LibFunc {
        io_class: Some("stdout"),
        willreturn: true,
        ..lf("printf")
    },
    LibFunc {
        io_class: Some("stdout"),
        willreturn: true,
        ..lf("puts")
    },
    LibFunc {
        io_class: Some("stdout"),
        willreturn: true,
        ..lf("putchar")
    },
    LibFunc {
        io_class: Some("stream"),
        willreturn: true,
        ..lf("fprintf")
    },
    LibFunc {
        io_class: Some("stream"),
        willreturn: true,
        ..lf("fputs")
    },
    LibFunc {
        io_class: Some("stream"),
        willreturn: true,
        ..lf("fputc")
    },
    LibFunc {
        io_class: Some("stream"),
        willreturn: true,
        ..lf("fwrite")
    },
    LibFunc {
        io_class: Some("stream"),
        willreturn: true,
        ..lf("fread")
    },
    LibFunc {
        willreturn: true,
        ..lf("fopen")
    },
    LibFunc {
        willreturn: true,
        ..lf("fclose")
    },
    LibFunc {
        willreturn: true,
        ..lf("fflush")
    },
    LibFunc {
        io_class: Some("sprintf"),
        willreturn: true,
        mem: MemEffect::ArgMemOnly,
        ..lf("sprintf")
    },
    LibFunc {
        io_class: Some("sprintf"),
        willreturn: true,
        mem: MemEffect::ArgMemOnly,
        ..lf("snprintf")
    },
    // -- string/memory ------------------------------------------------------
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("strlen")
    },
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("strcmp")
    },
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("strncmp")
    },
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("memcmp")
    },
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("strchr")
    },
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("strrchr")
    },
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("strstr")
    },
    LibFunc {
        mem: MemEffect::ArgMemOnly,
        willreturn: true,
        returns_nonnull: true,
        ..lf("memcpy")
    },
    LibFunc {
        mem: MemEffect::ArgMemOnly,
        willreturn: true,
        returns_nonnull: true,
        ..lf("memmove")
    },
    LibFunc {
        mem: MemEffect::ArgMemOnly,
        willreturn: true,
        returns_nonnull: true,
        ..lf("memset")
    },
    LibFunc {
        mem: MemEffect::ArgMemOnly,
        willreturn: true,
        ..lf("strcpy")
    },
    LibFunc {
        mem: MemEffect::ArgMemOnly,
        willreturn: true,
        ..lf("strncpy")
    },
    LibFunc {
        mem: MemEffect::ArgMemOnly,
        willreturn: true,
        ..lf("strcat")
    },
    // -- math ----------------------------------------------------------------
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("sqrt")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("sqrtf")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("sin")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("cos")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("exp")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("log")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("pow")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("fabs")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("floor")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("ceil")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("round")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("trunc")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("fmod")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("ldexp")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("abs")
    },
    LibFunc {
        mem: MemEffect::None,
        willreturn: true,
        ..lf("labs")
    },
    // -- misc ----------------------------------------------------------------
    LibFunc {
        mem: MemEffect::ReadOnly,
        willreturn: true,
        ..lf("getenv")
    },
    LibFunc {
        willreturn: true,
        ..lf("rand")
    },
    LibFunc {
        willreturn: true,
        ..lf("clock")
    },
    LibFunc {
        willreturn: true,
        ..lf("time")
    },
];

/// Looks up the knowledge record for a library function.
pub fn libfunc(name: &str) -> Option<&'static LibFunc> {
    LIBFUNCS.iter().find(|f| f.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups() {
        assert!(libfunc("exit").unwrap().noreturn);
        assert!(libfunc("malloc").unwrap().allocator);
        assert!(libfunc("free").unwrap().deallocator);
        assert_eq!(libfunc("strlen").unwrap().mem, MemEffect::ReadOnly);
        assert!(libfunc("unknown_fn").is_none());
    }

    #[test]
    fn printf_puts_share_a_class() {
        assert_eq!(
            libfunc("printf").unwrap().io_class,
            libfunc("puts").unwrap().io_class
        );
        assert_ne!(
            libfunc("printf").unwrap().io_class,
            libfunc("fprintf").unwrap().io_class
        );
    }

    #[test]
    fn table_has_no_duplicates() {
        let mut names: Vec<&str> = LIBFUNCS.iter().map(|f| f.name).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }
}

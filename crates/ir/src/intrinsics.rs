//! Recognized LLVM intrinsics.
//!
//! The paper reports Alive2 supporting 54 of 258 platform-independent
//! intrinsics (§3.8); the rest are over-approximated as unknown calls. We
//! mirror the structure: intrinsics listed here get precise semantics in
//! `alive2-sema`; any other `llvm.*` callee takes the over-approximation
//! path.

/// Semantics tag for a supported intrinsic.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IntrinsicKind {
    /// `llvm.sadd.with.overflow.*` → `{iN, i1}`.
    SAddWithOverflow,
    /// `llvm.uadd.with.overflow.*`.
    UAddWithOverflow,
    /// `llvm.ssub.with.overflow.*`.
    SSubWithOverflow,
    /// `llvm.usub.with.overflow.*`.
    USubWithOverflow,
    /// `llvm.smul.with.overflow.*`.
    SMulWithOverflow,
    /// `llvm.umul.with.overflow.*`.
    UMulWithOverflow,
    /// `llvm.sadd.sat.*` — saturating signed add.
    SAddSat,
    /// `llvm.uadd.sat.*`.
    UAddSat,
    /// `llvm.ssub.sat.*`.
    SSubSat,
    /// `llvm.usub.sat.*`.
    USubSat,
    /// `llvm.smax.*`.
    SMax,
    /// `llvm.smin.*`.
    SMin,
    /// `llvm.umax.*`.
    UMax,
    /// `llvm.umin.*`.
    UMin,
    /// `llvm.abs.*` (second arg: poison on INT_MIN).
    Abs,
    /// `llvm.ctpop.*` — population count.
    Ctpop,
    /// `llvm.ctlz.*` (second arg: poison on zero input).
    Ctlz,
    /// `llvm.cttz.*` (second arg: poison on zero input).
    Cttz,
    /// `llvm.bswap.*`.
    Bswap,
    /// `llvm.bitreverse.*`.
    Bitreverse,
    /// `llvm.fshl.*` — funnel shift left.
    Fshl,
    /// `llvm.fshr.*` — funnel shift right.
    Fshr,
    /// `llvm.assume(i1)` — UB if the operand is false/poison.
    Assume,
    /// `llvm.expect.*` — identity on the first operand.
    Expect,
    /// `llvm.fabs.*`.
    Fabs,
    /// `llvm.trap` — immediate UB (program aborts).
    Trap,
    /// `llvm.lifetime.start/end` — no-op in our memory model.
    Lifetime,
}

/// Looks up the semantics tag for an intrinsic callee name (without `@`).
/// Returns `None` for unknown/unsupported intrinsics, which callers must
/// over-approximate per §3.8.
pub fn intrinsic_kind(name: &str) -> Option<IntrinsicKind> {
    if !name.starts_with("llvm.") {
        return None;
    }
    let stem = &name[5..];
    let base: String = {
        // strip the trailing type suffixes: llvm.smax.i32 -> smax
        let parts: Vec<&str> = stem.split('.').collect();
        let keep = parts
            .iter()
            .take_while(|p| {
                !(p.starts_with('i') && p[1..].chars().all(|c| c.is_ascii_digit())
                    || **p == "f32"
                    || **p == "f64"
                    || **p == "f16"
                    || p.starts_with('v') && p[1..].contains('i'))
            })
            .cloned()
            .collect::<Vec<_>>();
        keep.join(".")
    };
    use IntrinsicKind::*;
    Some(match base.as_str() {
        "sadd.with.overflow" => SAddWithOverflow,
        "uadd.with.overflow" => UAddWithOverflow,
        "ssub.with.overflow" => SSubWithOverflow,
        "usub.with.overflow" => USubWithOverflow,
        "smul.with.overflow" => SMulWithOverflow,
        "umul.with.overflow" => UMulWithOverflow,
        "sadd.sat" => SAddSat,
        "uadd.sat" => UAddSat,
        "ssub.sat" => SSubSat,
        "usub.sat" => USubSat,
        "smax" => SMax,
        "smin" => SMin,
        "umax" => UMax,
        "umin" => UMin,
        "abs" => Abs,
        "ctpop" => Ctpop,
        "ctlz" => Ctlz,
        "cttz" => Cttz,
        "bswap" => Bswap,
        "bitreverse" => Bitreverse,
        "fshl" => Fshl,
        "fshr" => Fshr,
        "assume" => Assume,
        "expect" => Expect,
        "fabs" => Fabs,
        "trap" => Trap,
        "lifetime.start" | "lifetime.end" => Lifetime,
        _ => return None,
    })
}

/// True if the callee name denotes any intrinsic (supported or not).
pub fn is_intrinsic(name: &str) -> bool {
    name.starts_with("llvm.")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recognizes_typed_suffixes() {
        assert_eq!(
            intrinsic_kind("llvm.sadd.with.overflow.i32"),
            Some(IntrinsicKind::SAddWithOverflow)
        );
        assert_eq!(intrinsic_kind("llvm.smax.i8"), Some(IntrinsicKind::SMax));
        assert_eq!(intrinsic_kind("llvm.ctpop.i64"), Some(IntrinsicKind::Ctpop));
        assert_eq!(intrinsic_kind("llvm.fabs.f32"), Some(IntrinsicKind::Fabs));
        assert_eq!(intrinsic_kind("llvm.umax.v4i32"), Some(IntrinsicKind::UMax));
    }

    #[test]
    fn unknown_intrinsics_are_none() {
        assert_eq!(intrinsic_kind("llvm.memcpy.p0.p0.i64"), None);
        assert_eq!(intrinsic_kind("llvm.coro.begin"), None);
        assert!(is_intrinsic("llvm.memcpy.p0.p0.i64"));
        assert!(!is_intrinsic("printf"));
    }

    #[test]
    fn non_intrinsic_names_are_none() {
        assert_eq!(intrinsic_kind("printf"), None);
        assert_eq!(intrinsic_kind("malloc"), None);
    }
}

//! Modules: globals, function declarations, and definitions.

use crate::constant::Constant;
use crate::function::{FnAttrs, Function};
use crate::types::Type;
use std::fmt;

/// A global variable definition.
#[derive(Clone, PartialEq, Debug)]
pub struct GlobalVar {
    /// Symbol name (without `@`).
    pub name: String,
    /// Value type.
    pub ty: Type,
    /// Initializer, if any.
    pub init: Option<Constant>,
    /// True for `constant` (read-only block, paper §4).
    pub is_const: bool,
    /// Alignment in bytes (0 = natural).
    pub align: u64,
}

/// An external function declaration.
#[derive(Clone, PartialEq, Debug)]
pub struct FuncDecl {
    /// Symbol name (without `@`).
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Attributes (used by the §3.8 library-function knowledge base).
    pub attrs: FnAttrs,
}

/// A translation unit.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Module {
    /// Global variables.
    pub globals: Vec<GlobalVar>,
    /// External declarations.
    pub declares: Vec<FuncDecl>,
    /// Function definitions.
    pub functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function mutably by name.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Finds a global by name.
    pub fn global(&self, name: &str) -> Option<&GlobalVar> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Finds a declaration by name.
    pub fn declare(&self, name: &str) -> Option<&FuncDecl> {
        self.declares.iter().find(|d| d.name == name)
    }
}

impl fmt::Display for Module {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for g in &self.globals {
            let kind = if g.is_const { "constant" } else { "global" };
            write!(f, "@{} = {} {}", g.name, kind, g.ty)?;
            if let Some(init) = &g.init {
                write!(f, " {init}")?;
            }
            if g.align != 0 {
                write!(f, ", align {}", g.align)?;
            }
            writeln!(f)?;
            first = false;
        }
        for d in &self.declares {
            write!(f, "declare {} @{}(", d.ret_ty, d.name)?;
            for (i, p) in d.params.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{p}")?;
            }
            write!(f, ")")?;
            if d.attrs.mustprogress {
                write!(f, " mustprogress")?;
            }
            if d.attrs.noreturn {
                write!(f, " noreturn")?;
            }
            if d.attrs.willreturn {
                write!(f, " willreturn")?;
            }
            if d.attrs.readnone {
                write!(f, " memory(none)")?;
            } else if d.attrs.readonly {
                write!(f, " memory(read)")?;
            }
            writeln!(f)?;
            first = false;
        }
        for (i, func) in self.functions.iter().enumerate() {
            if !first || i > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{func}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_display() {
        let mut m = Module::new();
        m.globals.push(GlobalVar {
            name: "g".into(),
            ty: Type::i32(),
            init: Some(Constant::int(32, 7)),
            is_const: true,
            align: 4,
        });
        m.declares.push(FuncDecl {
            name: "ext".into(),
            ret_ty: Type::Void,
            params: vec![Type::Ptr],
            attrs: FnAttrs::default(),
        });
        m.functions.push(Function::new("main", Type::Void));
        assert!(m.global("g").is_some());
        assert!(m.declare("ext").is_some());
        assert!(m.function("main").is_some());
        assert!(m.function("nope").is_none());
        let s = m.to_string();
        assert!(s.contains("@g = constant i32 7, align 4"));
        assert!(s.contains("declare void @ext(ptr)"));
    }
}

//! IR constants, including `undef` and `poison` (deferred UB, paper §2).

use crate::types::{FloatKind, Type};
use alive2_smt::bv::BitVec;
use std::fmt;

/// A compile-time constant value.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Constant {
    /// An integer constant, width given by the bit-vector.
    Int(BitVec),
    /// A floating-point constant stored as its bit pattern.
    Float(FloatKind, BitVec),
    /// The null pointer.
    Null,
    /// `undef` of the given type: any value, may differ per observation.
    Undef(Type),
    /// `poison` of the given type: deferred UB, taints dependent values.
    Poison(Type),
    /// A reference to a global variable's address.
    Global(String),
    /// An aggregate (vector / array / struct) of constants.
    Aggregate(Type, Vec<Constant>),
    /// The all-zero value of an aggregate or scalar (`zeroinitializer`).
    ZeroInit(Type),
}

impl Constant {
    /// An `iN` constant from a `u64`.
    pub fn int(width: u32, value: u64) -> Constant {
        Constant::Int(BitVec::from_u64(width, value))
    }

    /// An `iN` constant from an `i64`.
    pub fn int_signed(width: u32, value: i64) -> Constant {
        Constant::Int(BitVec::from_i64(width, value))
    }

    /// The `i1 true` constant.
    pub fn bool(value: bool) -> Constant {
        Constant::int(1, value as u64)
    }

    /// A float constant from an `f64` value, rounded to the target kind.
    pub fn float(kind: FloatKind, value: f64) -> Constant {
        let bits = match kind {
            FloatKind::Double => BitVec::from_u64(64, value.to_bits()),
            FloatKind::Single => BitVec::from_u64(32, (value as f32).to_bits() as u64),
            FloatKind::Half => BitVec::from_u64(16, f64_to_f16_bits(value) as u64),
        };
        Constant::Float(kind, bits)
    }

    /// The type of the constant, when self-describing. Plain `Int`/`Float`
    /// know their width; `Null` is `ptr`.
    pub fn ty(&self) -> Type {
        match self {
            Constant::Int(v) => Type::Int(v.width()),
            Constant::Float(k, _) => Type::Float(*k),
            Constant::Null | Constant::Global(_) => Type::Ptr,
            Constant::Undef(t) | Constant::Poison(t) | Constant::ZeroInit(t) => t.clone(),
            Constant::Aggregate(t, _) => t.clone(),
        }
    }

    /// True if this constant is (or contains) `undef`.
    pub fn contains_undef(&self) -> bool {
        match self {
            Constant::Undef(_) => true,
            Constant::Aggregate(_, elems) => elems.iter().any(Constant::contains_undef),
            _ => false,
        }
    }

    /// True if this constant is (or contains) `poison`.
    pub fn contains_poison(&self) -> bool {
        match self {
            Constant::Poison(_) => true,
            Constant::Aggregate(_, elems) => elems.iter().any(Constant::contains_poison),
            _ => false,
        }
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the constant is not `Int`.
    pub fn as_int(&self) -> &BitVec {
        match self {
            Constant::Int(v) => v,
            other => panic!("expected integer constant, found {other}"),
        }
    }
}

/// Converts an `f64` to IEEE-754 binary16 bits with round-to-nearest-even.
pub fn f64_to_f16_bits(value: f64) -> u16 {
    let bits = value.to_bits();
    let sign = ((bits >> 63) as u16) << 15;
    let exp = ((bits >> 52) & 0x7ff) as i64;
    let frac = bits & 0xf_ffff_ffff_ffff;
    if exp == 0x7ff {
        // Inf / NaN
        let mantissa = if frac != 0 { 0x200 } else { 0 };
        return sign | 0x7c00 | mantissa;
    }
    let unbiased = exp - 1023;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow -> inf
    }
    if unbiased >= -14 {
        // Normal range; keep 10 fraction bits with RNE.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let shift = 42;
        let kept = (frac >> shift) as u16;
        let rest = frac & ((1u64 << shift) - 1);
        let halfway = 1u64 << (shift - 1);
        let mut out = sign | half_exp | kept;
        if rest > halfway || (rest == halfway && kept & 1 == 1) {
            out = out.wrapping_add(1); // may carry into exponent: correct RNE
        }
        out
    } else if unbiased >= -24 {
        // Subnormal half.
        let full = frac | (1u64 << 52);
        let shift = 42 + (-14 - unbiased) as u32;
        let kept = (full >> shift) as u16;
        let rest = full & ((1u64 << shift) - 1);
        let halfway = 1u64 << (shift - 1);
        let mut out = sign | kept;
        if rest > halfway || (rest == halfway && kept & 1 == 1) {
            out = out.wrapping_add(1);
        }
        out
    } else {
        sign // underflow to zero
    }
}

impl fmt::Display for Constant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Constant::Int(v) => {
                if v.width() == 1 {
                    write!(f, "{}", if v.is_one() { "true" } else { "false" })
                } else if v.sign_bit() && v.width() <= 64 {
                    write!(f, "{}", v.to_i64())
                } else {
                    write!(f, "{v}")
                }
            }
            Constant::Float(_, bits) => write!(f, "0xH{:x}", bits),
            Constant::Null => write!(f, "null"),
            Constant::Undef(_) => write!(f, "undef"),
            Constant::Poison(_) => write!(f, "poison"),
            Constant::Global(name) => write!(f, "@{name}"),
            Constant::ZeroInit(_) => write!(f, "zeroinitializer"),
            Constant::Aggregate(ty, elems) => {
                let (open, close) = match ty {
                    Type::Vector(..) => ("<", ">"),
                    Type::Array(..) => ("[", "]"),
                    _ => ("{ ", " }"),
                };
                write!(f, "{open}")?;
                for (i, e) in elems.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    let ety = match ty {
                        Type::Vector(_, t) | Type::Array(_, t) => (**t).clone(),
                        Type::Struct(ts) => ts[i].clone(),
                        _ => e.ty(),
                    };
                    write!(f, "{ety} {e}")?;
                }
                write!(f, "{close}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_display() {
        assert_eq!(Constant::int(32, 42).to_string(), "42");
        assert_eq!(Constant::int_signed(32, -1).to_string(), "-1");
        assert_eq!(Constant::bool(true).to_string(), "true");
        assert_eq!(Constant::bool(false).to_string(), "false");
    }

    #[test]
    fn typed_constants() {
        assert_eq!(Constant::int(8, 0).ty(), Type::Int(8));
        assert_eq!(Constant::Null.ty(), Type::Ptr);
        assert_eq!(Constant::Undef(Type::i32()).ty(), Type::i32());
        let agg = Constant::Aggregate(
            Type::vec(2, Type::i32()),
            vec![Constant::int(32, 1), Constant::Poison(Type::i32())],
        );
        assert!(agg.contains_poison());
        assert!(!agg.contains_undef());
    }

    #[test]
    fn float_bits() {
        let one = Constant::float(FloatKind::Single, 1.0);
        match one {
            Constant::Float(_, bits) => assert_eq!(bits.to_u64(), 0x3f80_0000),
            _ => unreachable!(),
        }
        let neg = Constant::float(FloatKind::Double, -2.5);
        match neg {
            Constant::Float(_, bits) => assert_eq!(bits.to_u64(), (-2.5f64).to_bits()),
            _ => unreachable!(),
        }
    }

    #[test]
    fn half_conversion_basics() {
        assert_eq!(f64_to_f16_bits(0.0), 0x0000);
        assert_eq!(f64_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f64_to_f16_bits(1.0), 0x3c00);
        assert_eq!(f64_to_f16_bits(-2.0), 0xc000);
        assert_eq!(f64_to_f16_bits(65504.0), 0x7bff); // f16 max
        assert_eq!(f64_to_f16_bits(1e10), 0x7c00); // overflow -> inf
        assert_eq!(f64_to_f16_bits(f64::NAN) & 0x7c00, 0x7c00);
        assert_ne!(f64_to_f16_bits(f64::NAN) & 0x3ff, 0);
        assert_eq!(f64_to_f16_bits(f64::INFINITY), 0x7c00);
        // subnormal: smallest positive half is 2^-24
        assert_eq!(f64_to_f16_bits(2f64.powi(-24)), 0x0001);
        assert_eq!(f64_to_f16_bits(2f64.powi(-26)), 0x0000);
    }
}

//! The type system of the LLVM-style IR (paper §2).
//!
//! Supported first-class types: fixed bit-width integers, IEEE-754 floats
//! (half / float / double), opaque pointers, and the aggregates — vectors
//! (homogeneous, constant-indexed), arrays (homogeneous, variable-indexed)
//! and structs (heterogeneous, constant-indexed).

use std::fmt;

/// Floating-point precision.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FloatKind {
    /// IEEE-754 binary16.
    Half,
    /// IEEE-754 binary32.
    Single,
    /// IEEE-754 binary64.
    Double,
}

impl FloatKind {
    /// Total bit width.
    pub fn bits(self) -> u32 {
        match self {
            FloatKind::Half => 16,
            FloatKind::Single => 32,
            FloatKind::Double => 64,
        }
    }

    /// Number of explicit significand bits (without the hidden bit).
    pub fn sig_bits(self) -> u32 {
        match self {
            FloatKind::Half => 10,
            FloatKind::Single => 23,
            FloatKind::Double => 52,
        }
    }

    /// Number of exponent bits.
    pub fn exp_bits(self) -> u32 {
        self.bits() - self.sig_bits() - 1
    }
}

/// An IR type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// `void` — only valid as a function return type.
    Void,
    /// `iN` — integer of width `N ≥ 1`.
    Int(u32),
    /// Floating-point type.
    Float(FloatKind),
    /// Opaque pointer (`ptr`).
    Ptr,
    /// `<N x T>` — SIMD vector of `N` elements.
    Vector(u32, Box<Type>),
    /// `[N x T]` — array of `N` elements.
    Array(u32, Box<Type>),
    /// `{T1, T2, …}` — literal struct.
    Struct(Vec<Type>),
}

/// Width in bits of a pointer's offset component in the memory encoding.
/// The paper uses 64; we keep this configurable at the semantics layer and
/// use 64 for sizing/printing purposes here.
pub const PTR_BITS: u32 = 64;

impl Type {
    /// Shorthand for `i1`.
    pub fn i1() -> Type {
        Type::Int(1)
    }

    /// Shorthand for `i8`.
    pub fn i8() -> Type {
        Type::Int(8)
    }

    /// Shorthand for `i32`.
    pub fn i32() -> Type {
        Type::Int(32)
    }

    /// Shorthand for `i64`.
    pub fn i64() -> Type {
        Type::Int(64)
    }

    /// A vector type.
    pub fn vec(n: u32, elem: Type) -> Type {
        Type::Vector(n, Box::new(elem))
    }

    /// An array type.
    pub fn array(n: u32, elem: Type) -> Type {
        Type::Array(n, Box::new(elem))
    }

    /// True for `iN`.
    pub fn is_int(&self) -> bool {
        matches!(self, Type::Int(_))
    }

    /// True for floating-point types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// True for the pointer type.
    pub fn is_ptr(&self) -> bool {
        matches!(self, Type::Ptr)
    }

    /// True for vectors.
    pub fn is_vector(&self) -> bool {
        matches!(self, Type::Vector(..))
    }

    /// True for vectors, arrays and structs.
    pub fn is_aggregate(&self) -> bool {
        matches!(self, Type::Vector(..) | Type::Array(..) | Type::Struct(_))
    }

    /// True for types a `ret`/argument can carry (everything but void).
    pub fn is_first_class(&self) -> bool {
        !matches!(self, Type::Void)
    }

    /// The integer width.
    ///
    /// # Panics
    ///
    /// Panics if the type is not `iN`.
    pub fn int_width(&self) -> u32 {
        match self {
            Type::Int(w) => *w,
            other => panic!("expected integer type, found {other}"),
        }
    }

    /// The element type of a vector or array.
    ///
    /// # Panics
    ///
    /// Panics for non-sequence types.
    pub fn elem_type(&self) -> &Type {
        match self {
            Type::Vector(_, t) | Type::Array(_, t) => t,
            other => panic!("expected vector or array type, found {other}"),
        }
    }

    /// The element count of a vector or array.
    ///
    /// # Panics
    ///
    /// Panics for non-sequence types.
    pub fn elem_count(&self) -> u32 {
        match self {
            Type::Vector(n, _) | Type::Array(n, _) => *n,
            other => panic!("expected vector or array type, found {other}"),
        }
    }

    /// Total width in bits when the value is held in a register (pointers
    /// count as [`PTR_BITS`]; aggregates are the concatenation of their
    /// elements, §3.1 of the paper).
    pub fn bit_width(&self) -> u32 {
        match self {
            Type::Void => 0,
            Type::Int(w) => *w,
            Type::Float(k) => k.bits(),
            Type::Ptr => PTR_BITS,
            Type::Vector(n, t) | Type::Array(n, t) => n * t.bit_width(),
            Type::Struct(ts) => ts.iter().map(Type::bit_width).sum(),
        }
    }

    /// Size in bytes when stored to memory. Sub-byte scalars round up to a
    /// byte; aggregates are packed element-by-element (we model packed
    /// layout — no padding — to keep byte-level semantics deterministic).
    pub fn byte_size(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::Int(w) => ((*w as u64) + 7) / 8,
            Type::Float(k) => (k.bits() as u64) / 8,
            Type::Ptr => (PTR_BITS as u64) / 8,
            Type::Vector(n, t) | Type::Array(n, t) => (*n as u64) * t.byte_size(),
            Type::Struct(ts) => ts.iter().map(Type::byte_size).sum(),
        }
    }

    /// The scalar type of a vector, or the type itself otherwise. Useful
    /// for instructions that apply element-wise.
    pub fn scalar_type(&self) -> &Type {
        match self {
            Type::Vector(_, t) => t,
            other => other,
        }
    }

    /// For element-wise operations: iterates `n` times for `<n x T>`,
    /// once otherwise.
    pub fn lanes(&self) -> u32 {
        match self {
            Type::Vector(n, _) => *n,
            _ => 1,
        }
    }

    /// The aggregate element type at a constant index path position.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or the type is scalar.
    pub fn field_type(&self, index: u32) -> &Type {
        match self {
            Type::Vector(n, _) | Type::Array(n, _) => {
                assert!(index < *n, "aggregate index {index} out of range");
            }
            Type::Struct(ts) => {
                assert!(
                    (index as usize) < ts.len(),
                    "struct index {index} out of range"
                );
            }
            other => panic!("cannot index into {other}"),
        }
        self.try_field_type(index).unwrap()
    }

    /// Non-panicking [`Type::field_type`]: `None` when the index is out
    /// of range or the type has no fields. The parser uses this to turn
    /// hostile index paths into parse errors instead of panics.
    pub fn try_field_type(&self, index: u32) -> Option<&Type> {
        match self {
            Type::Vector(n, t) | Type::Array(n, t) => (index < *n).then_some(&**t),
            Type::Struct(ts) => ts.get(index as usize),
            _ => None,
        }
    }

    /// Number of immediate fields of an aggregate.
    pub fn field_count(&self) -> u32 {
        match self {
            Type::Vector(n, _) | Type::Array(n, _) => *n,
            Type::Struct(ts) => ts.len() as u32,
            _ => 0,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int(w) => write!(f, "i{w}"),
            Type::Float(FloatKind::Half) => write!(f, "half"),
            Type::Float(FloatKind::Single) => write!(f, "float"),
            Type::Float(FloatKind::Double) => write!(f, "double"),
            Type::Ptr => write!(f, "ptr"),
            Type::Vector(n, t) => write!(f, "<{n} x {t}>"),
            Type::Array(n, t) => write!(f, "[{n} x {t}]"),
            Type::Struct(ts) => {
                write!(f, "{{ ")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, " }}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trip_shapes() {
        assert_eq!(Type::i32().to_string(), "i32");
        assert_eq!(Type::Float(FloatKind::Double).to_string(), "double");
        assert_eq!(Type::vec(4, Type::i8()).to_string(), "<4 x i8>");
        assert_eq!(Type::array(3, Type::Ptr).to_string(), "[3 x ptr]");
        assert_eq!(
            Type::Struct(vec![Type::i32(), Type::i1()]).to_string(),
            "{ i32, i1 }"
        );
    }

    #[test]
    fn widths_and_sizes() {
        assert_eq!(Type::Int(7).bit_width(), 7);
        assert_eq!(Type::Int(7).byte_size(), 1);
        assert_eq!(Type::vec(4, Type::i32()).bit_width(), 128);
        assert_eq!(Type::vec(4, Type::i32()).byte_size(), 16);
        assert_eq!(Type::Ptr.bit_width(), PTR_BITS);
        assert_eq!(Type::Struct(vec![Type::i8(), Type::i32()]).byte_size(), 5);
        assert_eq!(Type::Float(FloatKind::Half).bit_width(), 16);
    }

    #[test]
    fn lanes_and_scalars() {
        let v = Type::vec(8, Type::Int(16));
        assert_eq!(v.lanes(), 8);
        assert_eq!(v.scalar_type(), &Type::Int(16));
        assert_eq!(Type::i32().lanes(), 1);
        assert_eq!(Type::i32().scalar_type(), &Type::i32());
    }

    #[test]
    fn field_access() {
        let s = Type::Struct(vec![Type::i8(), Type::Ptr, Type::i1()]);
        assert_eq!(s.field_count(), 3);
        assert_eq!(s.field_type(1), &Type::Ptr);
        let a = Type::array(10, Type::i64());
        assert_eq!(a.field_type(9), &Type::i64());
    }

    #[test]
    fn float_kind_layout() {
        assert_eq!(FloatKind::Single.exp_bits(), 8);
        assert_eq!(FloatKind::Double.exp_bits(), 11);
        assert_eq!(FloatKind::Half.exp_bits(), 5);
    }

    #[test]
    #[should_panic]
    fn struct_index_out_of_range_panics() {
        Type::Struct(vec![Type::i8()]).field_type(1);
    }
}

//! Instructions of the LLVM-style IR.

use crate::constant::Constant;
use crate::types::Type;
use alive2_smt::bv::BitVec;
use std::fmt;

/// An operand: a virtual register reference or an inline constant.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A reference to an SSA register by name (without the `%` sigil).
    Reg(String),
    /// An inline constant.
    Const(Constant),
}

impl Operand {
    /// A register operand.
    pub fn reg(name: impl Into<String>) -> Operand {
        Operand::Reg(name.into())
    }

    /// An integer-constant operand.
    pub fn int(width: u32, value: u64) -> Operand {
        Operand::Const(Constant::int(width, value))
    }

    /// The register name, if this is a register.
    pub fn as_reg(&self) -> Option<&str> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Const(_) => None,
        }
    }

    /// The constant, if this is a constant.
    pub fn as_const(&self) -> Option<&Constant> {
        match self {
            Operand::Const(c) => Some(c),
            Operand::Reg(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "%{r}"),
            Operand::Const(c) => write!(f, "{c}"),
        }
    }
}

/// Integer binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOpKind {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (UB on zero divisor).
    UDiv,
    /// Signed division (UB on zero divisor or overflow).
    SDiv,
    /// Unsigned remainder (UB on zero divisor).
    URem,
    /// Signed remainder (UB on zero divisor or overflow).
    SRem,
    /// Shift left (poison on excessive shift amount).
    Shl,
    /// Logical shift right (poison on excessive shift amount).
    LShr,
    /// Arithmetic shift right (poison on excessive shift amount).
    AShr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl BinOpKind {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOpKind::Add => "add",
            BinOpKind::Sub => "sub",
            BinOpKind::Mul => "mul",
            BinOpKind::UDiv => "udiv",
            BinOpKind::SDiv => "sdiv",
            BinOpKind::URem => "urem",
            BinOpKind::SRem => "srem",
            BinOpKind::Shl => "shl",
            BinOpKind::LShr => "lshr",
            BinOpKind::AShr => "ashr",
            BinOpKind::And => "and",
            BinOpKind::Or => "or",
            BinOpKind::Xor => "xor",
        }
    }

    /// True if the operator accepts `nsw`/`nuw` flags.
    pub fn supports_wrap_flags(self) -> bool {
        matches!(
            self,
            BinOpKind::Add | BinOpKind::Sub | BinOpKind::Mul | BinOpKind::Shl
        )
    }

    /// True if the operator accepts the `exact` flag.
    pub fn supports_exact(self) -> bool {
        matches!(
            self,
            BinOpKind::UDiv | BinOpKind::SDiv | BinOpKind::LShr | BinOpKind::AShr
        )
    }

    /// True for division/remainder (immediate UB on zero divisor).
    pub fn is_div_rem(self) -> bool {
        matches!(
            self,
            BinOpKind::UDiv | BinOpKind::SDiv | BinOpKind::URem | BinOpKind::SRem
        )
    }
}

/// Poison-generating flags on integer arithmetic (paper §2: deferred UB).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct WrapFlags {
    /// "no signed wrap": signed overflow yields poison.
    pub nsw: bool,
    /// "no unsigned wrap": unsigned overflow yields poison.
    pub nuw: bool,
    /// "exact": a nonzero remainder/shifted-out bit yields poison.
    pub exact: bool,
}

impl WrapFlags {
    /// No flags set.
    pub fn none() -> WrapFlags {
        WrapFlags::default()
    }

    /// Only `nsw`.
    pub fn nsw() -> WrapFlags {
        WrapFlags {
            nsw: true,
            ..Default::default()
        }
    }

    /// Only `nuw`.
    pub fn nuw() -> WrapFlags {
        WrapFlags {
            nuw: true,
            ..Default::default()
        }
    }
}

/// Floating-point binary operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum FBinOpKind {
    /// Floating addition.
    FAdd,
    /// Floating subtraction.
    FSub,
    /// Floating multiplication.
    FMul,
    /// Floating division.
    FDiv,
    /// Floating remainder (C `fmod` rounding, paper §3.5).
    FRem,
}

impl FBinOpKind {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FBinOpKind::FAdd => "fadd",
            FBinOpKind::FSub => "fsub",
            FBinOpKind::FMul => "fmul",
            FBinOpKind::FDiv => "fdiv",
            FBinOpKind::FRem => "frem",
        }
    }
}

/// Fast-math flags (subset relevant to the paper's findings).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct FastMathFlags {
    /// Assume no NaNs: a NaN operand or result is poison.
    pub nnan: bool,
    /// Assume no infinities: an infinite operand or result is poison.
    pub ninf: bool,
    /// "no signed zeros": the sign of a zero result is non-deterministic.
    pub nsz: bool,
}

impl FastMathFlags {
    /// No flags.
    pub fn none() -> FastMathFlags {
        FastMathFlags::default()
    }

    /// True if any flag is set.
    pub fn any(self) -> bool {
        self.nnan || self.ninf || self.nsz
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ICmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned greater than.
    Ugt,
    /// Unsigned greater or equal.
    Uge,
    /// Unsigned less than.
    Ult,
    /// Unsigned less or equal.
    Ule,
    /// Signed greater than.
    Sgt,
    /// Signed greater or equal.
    Sge,
    /// Signed less than.
    Slt,
    /// Signed less or equal.
    Sle,
}

impl ICmpPred {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            ICmpPred::Eq => "eq",
            ICmpPred::Ne => "ne",
            ICmpPred::Ugt => "ugt",
            ICmpPred::Uge => "uge",
            ICmpPred::Ult => "ult",
            ICmpPred::Ule => "ule",
            ICmpPred::Sgt => "sgt",
            ICmpPred::Sge => "sge",
            ICmpPred::Slt => "slt",
            ICmpPred::Sle => "sle",
        }
    }

    /// The predicate with swapped operands (e.g. `ult` ↔ `ugt`).
    pub fn swapped(self) -> ICmpPred {
        match self {
            ICmpPred::Eq => ICmpPred::Eq,
            ICmpPred::Ne => ICmpPred::Ne,
            ICmpPred::Ugt => ICmpPred::Ult,
            ICmpPred::Uge => ICmpPred::Ule,
            ICmpPred::Ult => ICmpPred::Ugt,
            ICmpPred::Ule => ICmpPred::Uge,
            ICmpPred::Sgt => ICmpPred::Slt,
            ICmpPred::Sge => ICmpPred::Sle,
            ICmpPred::Slt => ICmpPred::Sgt,
            ICmpPred::Sle => ICmpPred::Sge,
        }
    }

    /// The logical negation of the predicate.
    pub fn inverse(self) -> ICmpPred {
        match self {
            ICmpPred::Eq => ICmpPred::Ne,
            ICmpPred::Ne => ICmpPred::Eq,
            ICmpPred::Ugt => ICmpPred::Ule,
            ICmpPred::Uge => ICmpPred::Ult,
            ICmpPred::Ult => ICmpPred::Uge,
            ICmpPred::Ule => ICmpPred::Ugt,
            ICmpPred::Sgt => ICmpPred::Sle,
            ICmpPred::Sge => ICmpPred::Slt,
            ICmpPred::Slt => ICmpPred::Sge,
            ICmpPred::Sle => ICmpPred::Sgt,
        }
    }

    /// Evaluates the predicate on concrete values.
    pub fn eval(self, a: &BitVec, b: &BitVec) -> bool {
        match self {
            ICmpPred::Eq => a == b,
            ICmpPred::Ne => a != b,
            ICmpPred::Ugt => b.ult(a),
            ICmpPred::Uge => b.ule(a),
            ICmpPred::Ult => a.ult(b),
            ICmpPred::Ule => a.ule(b),
            ICmpPred::Sgt => b.slt(a),
            ICmpPred::Sge => b.sle(a),
            ICmpPred::Slt => a.slt(b),
            ICmpPred::Sle => a.sle(b),
        }
    }
}

/// Floating-point comparison predicates (`o` = ordered, `u` = unordered).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum FCmpPred {
    False,
    Oeq,
    Ogt,
    Oge,
    Olt,
    Ole,
    One,
    Ord,
    Ueq,
    Ugt,
    Uge,
    Ult,
    Ule,
    Une,
    Uno,
    True,
}

impl FCmpPred {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            FCmpPred::False => "false",
            FCmpPred::Oeq => "oeq",
            FCmpPred::Ogt => "ogt",
            FCmpPred::Oge => "oge",
            FCmpPred::Olt => "olt",
            FCmpPred::Ole => "ole",
            FCmpPred::One => "one",
            FCmpPred::Ord => "ord",
            FCmpPred::Ueq => "ueq",
            FCmpPred::Ugt => "ugt",
            FCmpPred::Uge => "uge",
            FCmpPred::Ult => "ult",
            FCmpPred::Ule => "ule",
            FCmpPred::Une => "une",
            FCmpPred::Uno => "uno",
            FCmpPred::True => "true",
        }
    }
}

/// Cast operators.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CastKind {
    /// Integer truncation.
    Trunc,
    /// Zero extension.
    ZExt,
    /// Sign extension.
    SExt,
    /// Bit-pattern reinterpretation (paper §3.5 discusses float↔int).
    BitCast,
    /// Float truncation to a narrower float.
    FPTrunc,
    /// Float extension to a wider float.
    FPExt,
    /// Float to unsigned integer.
    FPToUI,
    /// Float to signed integer.
    FPToSI,
    /// Unsigned integer to float.
    UIToFP,
    /// Signed integer to float.
    SIToFP,
}

impl CastKind {
    /// The LLVM mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastKind::Trunc => "trunc",
            CastKind::ZExt => "zext",
            CastKind::SExt => "sext",
            CastKind::BitCast => "bitcast",
            CastKind::FPTrunc => "fptrunc",
            CastKind::FPExt => "fpext",
            CastKind::FPToUI => "fptoui",
            CastKind::FPToSI => "fptosi",
            CastKind::UIToFP => "uitofp",
            CastKind::SIToFP => "sitofp",
        }
    }
}

/// Attributes on parameters / call arguments that matter for refinement.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub struct ParamAttrs {
    /// Argument must not be null (precondition, paper §5.2).
    pub nonnull: bool,
    /// Argument must not be undef/poison.
    pub noundef: bool,
}

/// One instruction operation.
#[derive(Clone, PartialEq, Debug)]
pub enum InstOp {
    /// Integer binary arithmetic/logic.
    Bin {
        /// The operator.
        op: BinOpKind,
        /// Poison-generating flags.
        flags: WrapFlags,
        /// Operand type (integer or integer vector).
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Floating-point binary arithmetic.
    FBin {
        /// The operator.
        op: FBinOpKind,
        /// Fast-math flags.
        fmf: FastMathFlags,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Floating-point negation.
    FNeg {
        /// Fast-math flags.
        fmf: FastMathFlags,
        /// Operand type.
        ty: Type,
        /// Operand.
        val: Operand,
    },
    /// Integer comparison.
    ICmp {
        /// The predicate.
        pred: ICmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Floating-point comparison.
    FCmp {
        /// The predicate.
        pred: FCmpPred,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// Ternary select.
    Select {
        /// The i1 condition.
        cond: Operand,
        /// Value type.
        ty: Type,
        /// Value if true.
        tval: Operand,
        /// Value if false.
        fval: Operand,
    },
    /// Stop undef/poison propagation (paper §2).
    Freeze {
        /// Value type.
        ty: Type,
        /// Operand.
        val: Operand,
    },
    /// Conversion.
    Cast {
        /// The cast operator.
        kind: CastKind,
        /// Source type.
        from_ty: Type,
        /// Operand.
        val: Operand,
        /// Destination type.
        to_ty: Type,
    },
    /// SSA φ node.
    Phi {
        /// Value type.
        ty: Type,
        /// `(value, predecessor block)` pairs.
        incoming: Vec<(Operand, String)>,
    },
    /// Function call.
    Call {
        /// Return type.
        ty: Type,
        /// Callee symbol name (without `@`).
        callee: String,
        /// Arguments with their types and attributes.
        args: Vec<(Type, Operand, ParamAttrs)>,
    },
    /// Stack allocation.
    Alloca {
        /// Element type.
        elem_ty: Type,
        /// Number of elements.
        count: Operand,
        /// Alignment in bytes.
        align: u64,
    },
    /// Memory load.
    Load {
        /// Loaded type.
        ty: Type,
        /// Pointer operand.
        ptr: Operand,
        /// Alignment in bytes.
        align: u64,
    },
    /// Memory store. Has no result.
    Store {
        /// Stored value type.
        ty: Type,
        /// Stored value.
        val: Operand,
        /// Pointer operand.
        ptr: Operand,
        /// Alignment in bytes.
        align: u64,
    },
    /// Pointer arithmetic.
    Gep {
        /// `inbounds` marker: out-of-bounds results become poison.
        inbounds: bool,
        /// The element type the first index scales by.
        elem_ty: Type,
        /// Base pointer.
        ptr: Operand,
        /// `(index type, index)` list.
        indices: Vec<(Type, Operand)>,
    },
    /// Read one vector lane.
    ExtractElement {
        /// Vector type.
        vec_ty: Type,
        /// Vector operand.
        vec: Operand,
        /// Lane index.
        idx: Operand,
    },
    /// Write one vector lane.
    InsertElement {
        /// Vector type.
        vec_ty: Type,
        /// Vector operand.
        vec: Operand,
        /// Inserted scalar.
        elem: Operand,
        /// Lane index.
        idx: Operand,
    },
    /// Permute two vectors (paper §8.3 "Vectors and UB").
    ShuffleVector {
        /// Input vector type.
        vec_ty: Type,
        /// First vector.
        v1: Operand,
        /// Second vector.
        v2: Operand,
        /// Lane selectors; `None` encodes an undef mask element.
        mask: Vec<Option<u32>>,
    },
    /// Read a field of an aggregate register.
    ExtractValue {
        /// Aggregate type.
        agg_ty: Type,
        /// Aggregate operand.
        agg: Operand,
        /// Constant index path.
        indices: Vec<u32>,
    },
    /// Write a field of an aggregate register.
    InsertValue {
        /// Aggregate type.
        agg_ty: Type,
        /// Aggregate operand.
        agg: Operand,
        /// Inserted value's type.
        elem_ty: Type,
        /// Inserted value.
        elem: Operand,
        /// Constant index path.
        indices: Vec<u32>,
    },
    /// Return.
    Ret {
        /// The returned value, or `None` for `ret void`.
        val: Option<(Type, Operand)>,
    },
    /// Unconditional branch.
    Br {
        /// Destination block label.
        dest: String,
    },
    /// Conditional branch; branching on undef/poison is UB (paper §2).
    CondBr {
        /// The i1 condition.
        cond: Operand,
        /// Destination when true.
        then_dest: String,
        /// Destination when false.
        else_dest: String,
    },
    /// Multi-way branch.
    Switch {
        /// Scrutinee type.
        ty: Type,
        /// Scrutinee.
        val: Operand,
        /// Default destination.
        default: String,
        /// `(case value, destination)` pairs.
        cases: Vec<(BitVec, String)>,
    },
    /// Immediate UB when reached.
    Unreachable,
}

impl InstOp {
    /// True for block terminators.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstOp::Ret { .. }
                | InstOp::Br { .. }
                | InstOp::CondBr { .. }
                | InstOp::Switch { .. }
                | InstOp::Unreachable
        )
    }

    /// The type of the produced value; `None` when no value is produced
    /// (stores, terminators, void calls).
    pub fn result_type(&self) -> Option<Type> {
        match self {
            InstOp::Bin { ty, .. } | InstOp::FBin { ty, .. } | InstOp::FNeg { ty, .. } => {
                Some(ty.clone())
            }
            InstOp::ICmp { ty, .. } | InstOp::FCmp { ty, .. } => Some(match ty {
                Type::Vector(n, _) => Type::vec(*n, Type::i1()),
                _ => Type::i1(),
            }),
            InstOp::Select { ty, .. } | InstOp::Freeze { ty, .. } | InstOp::Phi { ty, .. } => {
                Some(ty.clone())
            }
            InstOp::Cast { to_ty, .. } => Some(to_ty.clone()),
            InstOp::Call { ty, .. } => {
                if *ty == Type::Void {
                    None
                } else {
                    Some(ty.clone())
                }
            }
            InstOp::Alloca { .. } | InstOp::Gep { .. } => Some(Type::Ptr),
            InstOp::Load { ty, .. } => Some(ty.clone()),
            InstOp::ExtractElement { vec_ty, .. } => Some(vec_ty.elem_type().clone()),
            InstOp::InsertElement { vec_ty, .. } => Some(vec_ty.clone()),
            InstOp::ShuffleVector { vec_ty, mask, .. } => {
                Some(Type::vec(mask.len() as u32, vec_ty.elem_type().clone()))
            }
            InstOp::ExtractValue {
                agg_ty, indices, ..
            } => {
                // A walk that leaves the aggregate has no type; `None`
                // surfaces as a verifier error rather than a panic.
                let mut t = agg_ty;
                for &i in indices {
                    t = t.try_field_type(i)?;
                }
                Some(t.clone())
            }
            InstOp::InsertValue { agg_ty, .. } => Some(agg_ty.clone()),
            InstOp::Store { .. }
            | InstOp::Ret { .. }
            | InstOp::Br { .. }
            | InstOp::CondBr { .. }
            | InstOp::Switch { .. }
            | InstOp::Unreachable => None,
        }
    }

    /// Iterates over all operand slots (immutable).
    pub fn operands(&self) -> Vec<&Operand> {
        let mut out = Vec::new();
        self.visit_operands(|op| out.push(op));
        out
    }

    fn visit_operands<'a>(&'a self, mut f: impl FnMut(&'a Operand)) {
        match self {
            InstOp::Bin { lhs, rhs, .. }
            | InstOp::FBin { lhs, rhs, .. }
            | InstOp::ICmp { lhs, rhs, .. }
            | InstOp::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstOp::FNeg { val, .. } | InstOp::Freeze { val, .. } | InstOp::Cast { val, .. } => {
                f(val)
            }
            InstOp::Select {
                cond, tval, fval, ..
            } => {
                f(cond);
                f(tval);
                f(fval);
            }
            InstOp::Phi { incoming, .. } => {
                for (v, _) in incoming {
                    f(v);
                }
            }
            InstOp::Call { args, .. } => {
                for (_, a, _) in args {
                    f(a);
                }
            }
            InstOp::Alloca { count, .. } => f(count),
            InstOp::Load { ptr, .. } => f(ptr),
            InstOp::Store { val, ptr, .. } => {
                f(val);
                f(ptr);
            }
            InstOp::Gep { ptr, indices, .. } => {
                f(ptr);
                for (_, i) in indices {
                    f(i);
                }
            }
            InstOp::ExtractElement { vec, idx, .. } => {
                f(vec);
                f(idx);
            }
            InstOp::InsertElement { vec, elem, idx, .. } => {
                f(vec);
                f(elem);
                f(idx);
            }
            InstOp::ShuffleVector { v1, v2, .. } => {
                f(v1);
                f(v2);
            }
            InstOp::ExtractValue { agg, .. } => f(agg),
            InstOp::InsertValue { agg, elem, .. } => {
                f(agg);
                f(elem);
            }
            InstOp::Ret { val } => {
                if let Some((_, v)) = val {
                    f(v);
                }
            }
            InstOp::CondBr { cond, .. } => f(cond),
            InstOp::Switch { val, .. } => f(val),
            InstOp::Br { .. } | InstOp::Unreachable => {}
        }
    }

    /// Applies `f` to every operand slot (mutable). Used for RAUW-style
    /// rewriting in the optimizer.
    pub fn map_operands(&mut self, mut f: impl FnMut(&mut Operand)) {
        match self {
            InstOp::Bin { lhs, rhs, .. }
            | InstOp::FBin { lhs, rhs, .. }
            | InstOp::ICmp { lhs, rhs, .. }
            | InstOp::FCmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            InstOp::FNeg { val, .. } | InstOp::Freeze { val, .. } | InstOp::Cast { val, .. } => {
                f(val)
            }
            InstOp::Select {
                cond, tval, fval, ..
            } => {
                f(cond);
                f(tval);
                f(fval);
            }
            InstOp::Phi { incoming, .. } => {
                for (v, _) in incoming {
                    f(v);
                }
            }
            InstOp::Call { args, .. } => {
                for (_, a, _) in args {
                    f(a);
                }
            }
            InstOp::Alloca { count, .. } => f(count),
            InstOp::Load { ptr, .. } => f(ptr),
            InstOp::Store { val, ptr, .. } => {
                f(val);
                f(ptr);
            }
            InstOp::Gep { ptr, indices, .. } => {
                f(ptr);
                for (_, i) in indices {
                    f(i);
                }
            }
            InstOp::ExtractElement { vec, idx, .. } => {
                f(vec);
                f(idx);
            }
            InstOp::InsertElement { vec, elem, idx, .. } => {
                f(vec);
                f(elem);
                f(idx);
            }
            InstOp::ShuffleVector { v1, v2, .. } => {
                f(v1);
                f(v2);
            }
            InstOp::ExtractValue { agg, .. } => f(agg),
            InstOp::InsertValue { agg, elem, .. } => {
                f(agg);
                f(elem);
            }
            InstOp::Ret { val } => {
                if let Some((_, v)) = val {
                    f(v);
                }
            }
            InstOp::CondBr { cond, .. } => f(cond),
            InstOp::Switch { val, .. } => f(val),
            InstOp::Br { .. } | InstOp::Unreachable => {}
        }
    }

    /// The labels this terminator may jump to (empty for non-terminators).
    pub fn successor_labels(&self) -> Vec<&str> {
        match self {
            InstOp::Br { dest } => vec![dest],
            InstOp::CondBr {
                then_dest,
                else_dest,
                ..
            } => vec![then_dest, else_dest],
            InstOp::Switch { default, cases, .. } => {
                let mut v = vec![default.as_str()];
                v.extend(cases.iter().map(|(_, l)| l.as_str()));
                v
            }
            _ => vec![],
        }
    }

    /// Rewrites terminator target labels with `f`.
    pub fn map_successor_labels(&mut self, mut f: impl FnMut(&mut String)) {
        match self {
            InstOp::Br { dest } => f(dest),
            InstOp::CondBr {
                then_dest,
                else_dest,
                ..
            } => {
                f(then_dest);
                f(else_dest);
            }
            InstOp::Switch { default, cases, .. } => {
                f(default);
                for (_, l) in cases {
                    f(l);
                }
            }
            _ => {}
        }
    }
}

/// A full instruction: optional result register plus the operation.
#[derive(Clone, PartialEq, Debug)]
pub struct Instruction {
    /// Result register name (without `%`), if the op produces a value.
    pub result: Option<String>,
    /// The operation.
    pub op: InstOp,
}

impl Instruction {
    /// An instruction with a result register.
    pub fn with_result(name: impl Into<String>, op: InstOp) -> Instruction {
        Instruction {
            result: Some(name.into()),
            op,
        }
    }

    /// An instruction without a result.
    pub fn stmt(op: InstOp) -> Instruction {
        Instruction { result: None, op }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(r) = &self.result {
            write!(f, "%{r} = ")?;
        }
        match &self.op {
            InstOp::Bin {
                op,
                flags,
                ty,
                lhs,
                rhs,
            } => {
                write!(f, "{}", op.mnemonic())?;
                if flags.nuw {
                    write!(f, " nuw")?;
                }
                if flags.nsw {
                    write!(f, " nsw")?;
                }
                if flags.exact {
                    write!(f, " exact")?;
                }
                write!(f, " {ty} {lhs}, {rhs}")
            }
            InstOp::FBin {
                op,
                fmf,
                ty,
                lhs,
                rhs,
            } => {
                write!(f, "{}", op.mnemonic())?;
                write_fmf(f, *fmf)?;
                write!(f, " {ty} {lhs}, {rhs}")
            }
            InstOp::FNeg { fmf, ty, val } => {
                write!(f, "fneg")?;
                write_fmf(f, *fmf)?;
                write!(f, " {ty} {val}")
            }
            InstOp::ICmp { pred, ty, lhs, rhs } => {
                write!(f, "icmp {} {ty} {lhs}, {rhs}", pred.mnemonic())
            }
            InstOp::FCmp { pred, ty, lhs, rhs } => {
                write!(f, "fcmp {} {ty} {lhs}, {rhs}", pred.mnemonic())
            }
            InstOp::Select {
                cond,
                ty,
                tval,
                fval,
            } => write!(f, "select i1 {cond}, {ty} {tval}, {ty} {fval}"),
            InstOp::Freeze { ty, val } => write!(f, "freeze {ty} {val}"),
            InstOp::Cast {
                kind,
                from_ty,
                val,
                to_ty,
            } => write!(f, "{} {from_ty} {val} to {to_ty}", kind.mnemonic()),
            InstOp::Phi { ty, incoming } => {
                write!(f, "phi {ty} ")?;
                for (i, (v, b)) in incoming.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "[ {v}, %{b} ]")?;
                }
                Ok(())
            }
            InstOp::Call { ty, callee, args } => {
                write!(f, "call {ty} @{callee}(")?;
                for (i, (t, a, attrs)) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                    if attrs.nonnull {
                        write!(f, " nonnull")?;
                    }
                    if attrs.noundef {
                        write!(f, " noundef")?;
                    }
                    write!(f, " {a}")?;
                }
                write!(f, ")")
            }
            InstOp::Alloca {
                elem_ty,
                count,
                align,
            } => {
                write!(f, "alloca {elem_ty}")?;
                if !matches!(count, Operand::Const(Constant::Int(v)) if v.is_one()) {
                    write!(f, ", i64 {count}")?;
                }
                if *align != 0 {
                    write!(f, ", align {align}")?;
                }
                Ok(())
            }
            InstOp::Load { ty, ptr, align } => {
                write!(f, "load {ty}, ptr {ptr}")?;
                if *align != 0 {
                    write!(f, ", align {align}")?;
                }
                Ok(())
            }
            InstOp::Store {
                ty,
                val,
                ptr,
                align,
            } => {
                write!(f, "store {ty} {val}, ptr {ptr}")?;
                if *align != 0 {
                    write!(f, ", align {align}")?;
                }
                Ok(())
            }
            InstOp::Gep {
                inbounds,
                elem_ty,
                ptr,
                indices,
            } => {
                write!(f, "getelementptr ")?;
                if *inbounds {
                    write!(f, "inbounds ")?;
                }
                write!(f, "{elem_ty}, ptr {ptr}")?;
                for (t, i) in indices {
                    write!(f, ", {t} {i}")?;
                }
                Ok(())
            }
            InstOp::ExtractElement { vec_ty, vec, idx } => {
                write!(f, "extractelement {vec_ty} {vec}, i64 {idx}")
            }
            InstOp::InsertElement {
                vec_ty,
                vec,
                elem,
                idx,
            } => {
                let et = vec_ty.elem_type();
                write!(f, "insertelement {vec_ty} {vec}, {et} {elem}, i64 {idx}")
            }
            InstOp::ShuffleVector {
                vec_ty,
                v1,
                v2,
                mask,
            } => {
                write!(
                    f,
                    "shufflevector {vec_ty} {v1}, {vec_ty} {v2}, <{} x i32> <",
                    mask.len()
                )?;
                for (i, m) in mask.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    match m {
                        Some(k) => write!(f, "i32 {k}")?,
                        None => write!(f, "i32 undef")?,
                    }
                }
                write!(f, ">")
            }
            InstOp::ExtractValue {
                agg_ty,
                agg,
                indices,
            } => {
                write!(f, "extractvalue {agg_ty} {agg}")?;
                for i in indices {
                    write!(f, ", {i}")?;
                }
                Ok(())
            }
            InstOp::InsertValue {
                agg_ty,
                agg,
                elem_ty,
                elem,
                indices,
            } => {
                write!(f, "insertvalue {agg_ty} {agg}, {elem_ty} {elem}")?;
                for i in indices {
                    write!(f, ", {i}")?;
                }
                Ok(())
            }
            InstOp::Ret { val } => match val {
                Some((t, v)) => write!(f, "ret {t} {v}"),
                None => write!(f, "ret void"),
            },
            InstOp::Br { dest } => write!(f, "br label %{dest}"),
            InstOp::CondBr {
                cond,
                then_dest,
                else_dest,
            } => write!(f, "br i1 {cond}, label %{then_dest}, label %{else_dest}"),
            InstOp::Switch {
                ty,
                val,
                default,
                cases,
            } => {
                write!(f, "switch {ty} {val}, label %{default} [")?;
                for (c, l) in cases {
                    write!(f, " {ty} {c}, label %{l}")?;
                }
                write!(f, " ]")
            }
            InstOp::Unreachable => write!(f, "unreachable"),
        }
    }
}

fn write_fmf(f: &mut fmt::Formatter<'_>, fmf: FastMathFlags) -> fmt::Result {
    if fmf.nnan {
        write!(f, " nnan")?;
    }
    if fmf.ninf {
        write!(f, " ninf")?;
    }
    if fmf.nsz {
        write!(f, " nsz")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_bin_with_flags() {
        let inst = Instruction::with_result(
            "t",
            InstOp::Bin {
                op: BinOpKind::Add,
                flags: WrapFlags {
                    nsw: true,
                    nuw: true,
                    exact: false,
                },
                ty: Type::i32(),
                lhs: Operand::reg("a"),
                rhs: Operand::int(32, 1),
            },
        );
        assert_eq!(inst.to_string(), "%t = add nuw nsw i32 %a, 1");
    }

    #[test]
    fn display_control_flow() {
        let br = Instruction::stmt(InstOp::CondBr {
            cond: Operand::reg("c"),
            then_dest: "then".into(),
            else_dest: "else".into(),
        });
        assert_eq!(br.to_string(), "br i1 %c, label %then, label %else");
        let ret = Instruction::stmt(InstOp::Ret {
            val: Some((Type::i32(), Operand::reg("q"))),
        });
        assert_eq!(ret.to_string(), "ret i32 %q");
    }

    #[test]
    fn result_types() {
        let icmp = InstOp::ICmp {
            pred: ICmpPred::Eq,
            ty: Type::i32(),
            lhs: Operand::reg("a"),
            rhs: Operand::reg("b"),
        };
        assert_eq!(icmp.result_type(), Some(Type::i1()));
        let vicmp = InstOp::ICmp {
            pred: ICmpPred::Eq,
            ty: Type::vec(4, Type::i32()),
            lhs: Operand::reg("a"),
            rhs: Operand::reg("b"),
        };
        assert_eq!(vicmp.result_type(), Some(Type::vec(4, Type::i1())));
        let store = InstOp::Store {
            ty: Type::i32(),
            val: Operand::reg("v"),
            ptr: Operand::reg("p"),
            align: 4,
        };
        assert_eq!(store.result_type(), None);
        let shuffle = InstOp::ShuffleVector {
            vec_ty: Type::vec(2, Type::i8()),
            v1: Operand::reg("a"),
            v2: Operand::reg("b"),
            mask: vec![Some(0), Some(2), None],
        };
        assert_eq!(shuffle.result_type(), Some(Type::vec(3, Type::i8())));
    }

    #[test]
    fn icmp_predicate_algebra() {
        use ICmpPred::*;
        for p in [Eq, Ne, Ugt, Uge, Ult, Ule, Sgt, Sge, Slt, Sle] {
            assert_eq!(p.swapped().swapped(), p);
            assert_eq!(p.inverse().inverse(), p);
        }
        let a = BitVec::from_i64(8, -5);
        let b = BitVec::from_u64(8, 3);
        assert!(Slt.eval(&a, &b));
        assert!(Ugt.eval(&a, &b));
        assert!(Ne.eval(&a, &b));
    }

    #[test]
    fn operand_traversal_and_rewrite() {
        let mut op = InstOp::Select {
            cond: Operand::reg("c"),
            ty: Type::i32(),
            tval: Operand::reg("x"),
            fval: Operand::reg("y"),
        };
        assert_eq!(op.operands().len(), 3);
        op.map_operands(|o| {
            if o.as_reg() == Some("x") {
                *o = Operand::int(32, 7);
            }
        });
        match &op {
            InstOp::Select { tval, .. } => {
                assert_eq!(tval.as_const().unwrap().as_int().to_u64(), 7)
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn successor_labels() {
        let mut sw = InstOp::Switch {
            ty: Type::i32(),
            val: Operand::reg("x"),
            default: "d".into(),
            cases: vec![
                (BitVec::from_u64(32, 1), "a".into()),
                (BitVec::from_u64(32, 2), "b".into()),
            ],
        };
        assert_eq!(sw.successor_labels(), vec!["d", "a", "b"]);
        sw.map_successor_labels(|l| *l = format!("{l}.1"));
        assert_eq!(sw.successor_labels(), vec!["d.1", "a.1", "b.1"]);
    }
}

//! Functions, basic blocks, and function-level attributes.

use crate::instruction::{InstOp, Instruction, Operand, ParamAttrs};
use crate::types::Type;
use std::collections::HashMap;
use std::fmt;

/// A formal parameter.
#[derive(Clone, PartialEq, Debug)]
pub struct Param {
    /// Parameter name (without `%`).
    pub name: String,
    /// Parameter type.
    pub ty: Type,
    /// Refinement-relevant attributes.
    pub attrs: ParamAttrs,
}

/// Function-level attributes relevant to validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct FnAttrs {
    /// All loops must make progress; paired with bounded unrolling (§5).
    pub mustprogress: bool,
    /// The function never reads or writes memory.
    pub readnone: bool,
    /// The function only reads memory.
    pub readonly: bool,
    /// The function never returns.
    pub noreturn: bool,
    /// The function always returns (terminates).
    pub willreturn: bool,
}

/// A basic block: a label and a non-empty instruction list ending in a
/// terminator (enforced by [`crate::verify`]).
#[derive(Clone, PartialEq, Debug)]
pub struct Block {
    /// Label (without the trailing `:`).
    pub name: String,
    /// Instructions, terminator last.
    pub insts: Vec<Instruction>,
}

impl Block {
    /// Creates an empty block with a name.
    pub fn new(name: impl Into<String>) -> Block {
        Block {
            name: name.into(),
            insts: Vec::new(),
        }
    }

    /// The terminator instruction, if the block is well-formed.
    pub fn terminator(&self) -> Option<&Instruction> {
        self.insts.last().filter(|i| i.op.is_terminator())
    }

    /// The φ nodes at the head of the block.
    pub fn phis(&self) -> impl Iterator<Item = &Instruction> {
        self.insts
            .iter()
            .take_while(|i| matches!(i.op, InstOp::Phi { .. }))
    }
}

/// A function definition.
#[derive(Clone, PartialEq, Debug)]
pub struct Function {
    /// Symbol name (without `@`).
    pub name: String,
    /// Return type.
    pub ret_ty: Type,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Basic blocks; the first is the entry block.
    pub blocks: Vec<Block>,
    /// Function attributes.
    pub attrs: FnAttrs,
}

impl Function {
    /// Creates an empty function.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> Function {
        Function {
            name: name.into(),
            ret_ty,
            params: Vec::new(),
            blocks: Vec::new(),
            attrs: FnAttrs::default(),
        }
    }

    /// The entry block.
    ///
    /// # Panics
    ///
    /// Panics if the function has no blocks.
    pub fn entry(&self) -> &Block {
        &self.blocks[0]
    }

    /// Finds a block index by label.
    pub fn block_index(&self, label: &str) -> Option<usize> {
        self.blocks.iter().position(|b| b.name == label)
    }

    /// Finds a block by label.
    pub fn block(&self, label: &str) -> Option<&Block> {
        self.blocks.iter().find(|b| b.name == label)
    }

    /// Finds a block mutably by label.
    pub fn block_mut(&mut self, label: &str) -> Option<&mut Block> {
        self.blocks.iter_mut().find(|b| b.name == label)
    }

    /// Iterates over every instruction, with its block index.
    pub fn insts(&self) -> impl Iterator<Item = (usize, &Instruction)> {
        self.blocks
            .iter()
            .enumerate()
            .flat_map(|(bi, b)| b.insts.iter().map(move |i| (bi, i)))
    }

    /// Map from defined register name to its type (params + instruction
    /// results).
    pub fn def_types(&self) -> HashMap<String, Type> {
        let mut map = HashMap::new();
        for p in &self.params {
            map.insert(p.name.clone(), p.ty.clone());
        }
        for (_, inst) in self.insts() {
            if let (Some(r), Some(t)) = (&inst.result, inst.op.result_type()) {
                map.insert(r.clone(), t);
            }
        }
        map
    }

    /// Replaces every use of register `from` with operand `to`
    /// (replace-all-uses-with).
    pub fn replace_uses(&mut self, from: &str, to: &Operand) {
        for b in &mut self.blocks {
            for inst in &mut b.insts {
                inst.op.map_operands(|op| {
                    if op.as_reg() == Some(from) {
                        *op = to.clone();
                    }
                });
            }
        }
    }

    /// Counts uses of a register.
    pub fn count_uses(&self, reg: &str) -> usize {
        self.insts()
            .map(|(_, i)| {
                i.op.operands()
                    .iter()
                    .filter(|o| o.as_reg() == Some(reg))
                    .count()
            })
            .sum()
    }

    /// A fresh register name not yet used by any definition, based on a
    /// prefix.
    pub fn fresh_reg(&self, prefix: &str) -> String {
        let defs = self.def_types();
        if !defs.contains_key(prefix) {
            return prefix.to_string();
        }
        for i in 0.. {
            let cand = format!("{prefix}.{i}");
            if !defs.contains_key(&cand) {
                return cand;
            }
        }
        unreachable!()
    }

    /// A fresh block label not yet in use, based on a prefix.
    pub fn fresh_label(&self, prefix: &str) -> String {
        if self.block_index(prefix).is_none() {
            return prefix.to_string();
        }
        for i in 0.. {
            let cand = format!("{prefix}.{i}");
            if self.block_index(&cand).is_none() {
                return cand;
            }
        }
        unreachable!()
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "define {} @{}(", self.ret_ty, self.name)?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", p.ty)?;
            if p.attrs.nonnull {
                write!(f, " nonnull")?;
            }
            if p.attrs.noundef {
                write!(f, " noundef")?;
            }
            write!(f, " %{}", p.name)?;
        }
        write!(f, ")")?;
        if self.attrs.mustprogress {
            write!(f, " mustprogress")?;
        }
        if self.attrs.noreturn {
            write!(f, " noreturn")?;
        }
        if self.attrs.willreturn {
            write!(f, " willreturn")?;
        }
        if self.attrs.readnone {
            write!(f, " memory(none)")?;
        } else if self.attrs.readonly {
            write!(f, " memory(read)")?;
        }
        writeln!(f, " {{")?;
        for (bi, b) in self.blocks.iter().enumerate() {
            if bi > 0 {
                writeln!(f)?;
            }
            writeln!(f, "{}:", b.name)?;
            for inst in &b.insts {
                writeln!(f, "  {inst}")?;
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instruction::{BinOpKind, WrapFlags};

    fn sample() -> Function {
        let mut f = Function::new("fn", Type::i32());
        f.params.push(Param {
            name: "a".into(),
            ty: Type::i32(),
            attrs: ParamAttrs::default(),
        });
        let mut entry = Block::new("entry");
        entry.insts.push(Instruction::with_result(
            "t",
            InstOp::Bin {
                op: BinOpKind::Add,
                flags: WrapFlags::none(),
                ty: Type::i32(),
                lhs: Operand::reg("a"),
                rhs: Operand::reg("a"),
            },
        ));
        entry.insts.push(Instruction::stmt(InstOp::Ret {
            val: Some((Type::i32(), Operand::reg("t"))),
        }));
        f.blocks.push(entry);
        f
    }

    #[test]
    fn def_types_and_uses() {
        let f = sample();
        let defs = f.def_types();
        assert_eq!(defs["a"], Type::i32());
        assert_eq!(defs["t"], Type::i32());
        assert_eq!(f.count_uses("a"), 2);
        assert_eq!(f.count_uses("t"), 1);
    }

    #[test]
    fn replace_uses_rewrites_operands() {
        let mut f = sample();
        f.replace_uses("a", &Operand::int(32, 5));
        assert_eq!(f.count_uses("a"), 0);
        let printed = f.to_string();
        assert!(printed.contains("add i32 5, 5"), "{printed}");
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let f = sample();
        assert_eq!(f.fresh_reg("q"), "q");
        assert_eq!(f.fresh_reg("t"), "t.0");
        assert_eq!(f.fresh_label("entry"), "entry.0");
    }

    #[test]
    fn display_shape() {
        let s = sample().to_string();
        assert!(s.starts_with("define i32 @fn(i32 %a) {"));
        assert!(s.contains("entry:"));
        assert!(s.contains("  %t = add i32 %a, %a"));
        assert!(s.ends_with("}"));
    }

    #[test]
    fn terminator_and_phis() {
        let f = sample();
        let b = f.entry();
        assert!(b.terminator().is_some());
        assert_eq!(b.phis().count(), 0);
    }
}

//! Control-flow graph over a function's basic blocks.

use crate::function::Function;

/// Successor/predecessor structure with traversal orders.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Successor block indices per block.
    pub succs: Vec<Vec<usize>>,
    /// Predecessor block indices per block.
    pub preds: Vec<Vec<usize>>,
}

impl Cfg {
    /// Builds the CFG of a function. Unknown branch targets are ignored
    /// (the verifier reports them).
    pub fn new(f: &Function) -> Cfg {
        let n = f.blocks.len();
        let mut succs = vec![Vec::new(); n];
        let mut preds = vec![Vec::new(); n];
        for (bi, b) in f.blocks.iter().enumerate() {
            if let Some(term) = b.insts.last() {
                for label in term.op.successor_labels() {
                    if let Some(ti) = f.block_index(label) {
                        if !succs[bi].contains(&ti) {
                            succs[bi].push(ti);
                        }
                        if !preds[ti].contains(&bi) {
                            preds[ti].push(bi);
                        }
                    }
                }
            }
        }
        Cfg { succs, preds }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// True if the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Blocks reachable from the entry (block 0).
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return seen;
        }
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(b) = stack.pop() {
            for &s in &self.succs[b] {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// Depth-first preorder from the entry (reachable blocks only).
    pub fn dfs_preorder(&self) -> Vec<usize> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return order;
        }
        // Iterative DFS preserving child order.
        let mut stack = vec![(0usize, 0usize)];
        seen[0] = true;
        order.push(0);
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.succs[b].len() {
                let s = self.succs[b][*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    order.push(s);
                    stack.push((s, 0));
                }
            } else {
                stack.pop();
            }
        }
        order
    }

    /// Postorder from the entry (reachable blocks only).
    pub fn postorder(&self) -> Vec<usize> {
        let mut order = Vec::new();
        let mut seen = vec![false; self.len()];
        if self.is_empty() {
            return order;
        }
        let mut stack = vec![(0usize, 0usize)];
        seen[0] = true;
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            if *i < self.succs[b].len() {
                let s = self.succs[b][*i];
                *i += 1;
                if !seen[s] {
                    seen[s] = true;
                    stack.push((s, 0));
                }
            } else {
                order.push(b);
                stack.pop();
            }
        }
        order
    }

    /// Reverse postorder from the entry.
    pub fn reverse_postorder(&self) -> Vec<usize> {
        let mut po = self.postorder();
        po.reverse();
        po
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    fn diamond() -> Function {
        parse_function(
            r#"define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %exit
b:
  br label %exit
exit:
  %r = phi i32 [ 1, %a ], [ 2, %b ]
  ret i32 %r
}"#,
        )
        .unwrap()
    }

    #[test]
    fn diamond_structure() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.succs[0], vec![1, 2]);
        assert_eq!(cfg.preds[3], vec![1, 2]);
        assert_eq!(cfg.succs[3], Vec::<usize>::new());
    }

    #[test]
    fn orders() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let rpo = cfg.reverse_postorder();
        assert_eq!(rpo[0], 0);
        assert_eq!(*rpo.last().unwrap(), 3);
        let pre = cfg.dfs_preorder();
        assert_eq!(pre[0], 0);
        assert_eq!(pre.len(), 4);
    }

    #[test]
    fn unreachable_blocks() {
        let f = parse_function(
            r#"define void @f() {
entry:
  ret void
dead:
  br label %dead
}"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let r = cfg.reachable();
        assert!(r[0]);
        assert!(!r[1]);
    }

    #[test]
    fn loop_edges() {
        let f = parse_function(
            r#"define void @f(i1 %c) {
entry:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  br label %head
exit:
  ret void
}"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let head = 1;
        assert!(cfg.preds[head].contains(&0));
        assert!(cfg.preds[head].contains(&2));
    }
}

//! Loop nesting forest via the Tarjan–Havlak algorithm (paper §7).
//!
//! The result is a forest of natural (and, when present, irreducible)
//! loops: each node is a loop header whose children are the headers of
//! immediately nested loops. The unroller (in `alive2-sema`) traverses the
//! forest in post-order to unroll inside-out, which keeps the number of
//! unroll operations linear in the number of loops.

use crate::cfg::Cfg;
use std::collections::HashSet;

/// One loop in the nesting forest.
#[derive(Clone, Debug)]
pub struct Loop {
    /// The header block index.
    pub header: usize,
    /// All blocks in the loop body, including the header and the bodies of
    /// nested loops.
    pub blocks: Vec<usize>,
    /// Sources of back edges into the header.
    pub latches: Vec<usize>,
    /// Parent loop index in [`LoopForest::loops`], if nested.
    pub parent: Option<usize>,
    /// Child loop indices (immediately nested loops).
    pub children: Vec<usize>,
    /// True when the loop is irreducible (entered other than through the
    /// header). Alive2-rs refuses to unroll these and reports the function
    /// as unsupported.
    pub irreducible: bool,
}

/// The loop nesting forest of a function.
#[derive(Clone, Debug, Default)]
pub struct LoopForest {
    /// All discovered loops; children always appear before parents (the
    /// discovery order of reverse DFS), so iterating in order visits inner
    /// loops first.
    pub loops: Vec<Loop>,
    /// For each block, the innermost containing loop index.
    pub loop_of: Vec<Option<usize>>,
}

impl LoopForest {
    /// Runs Tarjan–Havlak loop analysis on a CFG.
    pub fn new(cfg: &Cfg) -> LoopForest {
        let n = cfg.len();
        let mut forest = LoopForest {
            loops: Vec::new(),
            loop_of: vec![None; n],
        };
        if n == 0 {
            return forest;
        }

        // DFS numbering.
        let pre = cfg.dfs_preorder();
        let mut number = vec![usize::MAX; n];
        for (i, &b) in pre.iter().enumerate() {
            number[b] = i;
        }
        // last[v] = highest DFS number in v's DFS subtree, for ancestor tests.
        // When a node is popped its whole subtree has been explored, so the
        // highest preorder number assigned so far is exactly its extent.
        let mut last = vec![0usize; n];
        {
            let mut seen = vec![false; n];
            let mut max_assigned = 0usize;
            let mut stack = vec![(0usize, 0usize)];
            seen[0] = true;
            while let Some(&mut (b, ref mut i)) = stack.last_mut() {
                if *i < cfg.succs[b].len() {
                    let s = cfg.succs[b][*i];
                    *i += 1;
                    if !seen[s] {
                        seen[s] = true;
                        max_assigned = max_assigned.max(number[s]);
                        stack.push((s, 0));
                    }
                } else {
                    last[b] = max_assigned.max(number[b]);
                    stack.pop();
                }
            }
        }
        let is_ancestor = |w: usize, v: usize| number[w] <= number[v] && last[v] <= last[w];

        // Union-find over blocks, collapsing inner loops into their header.
        let mut uf: Vec<usize> = (0..n).collect();
        fn find(uf: &mut Vec<usize>, x: usize) -> usize {
            if uf[x] != x {
                let r = find(uf, uf[x]);
                uf[x] = r;
            }
            uf[x]
        }

        // Process headers in reverse DFS preorder (inner loops first).
        for &w in pre.iter().rev() {
            let mut body: HashSet<usize> = HashSet::new();
            let mut latches = Vec::new();
            let mut irreducible = false;
            let mut self_loop = false;
            for &v in &cfg.preds[w] {
                if number[v] == usize::MAX {
                    continue; // unreachable pred
                }
                // Back edge v -> w iff w is a DFS ancestor of v.
                if is_ancestor(w, v) {
                    latches.push(v);
                    if v == w {
                        self_loop = true;
                    } else {
                        body.insert(find(&mut uf, v));
                    }
                }
            }
            body.remove(&w);
            if body.is_empty() && !self_loop && latches.is_empty() {
                continue;
            }
            // Chase predecessors backwards to collect the loop body.
            let mut worklist: Vec<usize> = body.iter().copied().collect();
            while let Some(x) = worklist.pop() {
                for &y in &cfg.preds[x] {
                    if number[y] == usize::MAX {
                        continue;
                    }
                    if is_ancestor(w, y) {
                        // y -> x is not a back edge into w's subtree top
                        let yr = find(&mut uf, y);
                        if yr != w && !body.contains(&yr) {
                            body.insert(yr);
                            worklist.push(yr);
                        }
                    } else {
                        // An entry into the loop that bypasses the header.
                        irreducible = true;
                    }
                }
            }

            // Record the loop.
            let loop_idx = forest.loops.len();
            let mut blocks: Vec<usize> = vec![w];
            for &b in &body {
                blocks.push(b);
            }
            // Nested loops collapsed into their headers: expand to the full
            // block set by inheriting nested loops' blocks.
            let mut full: HashSet<usize> = HashSet::new();
            for &b in &blocks {
                full.insert(b);
                if let Some(li) = forest.loop_of[b] {
                    // b is a (collapsed) inner header: absorb its blocks.
                    let mut stack = vec![li];
                    while let Some(l) = stack.pop() {
                        for &ib in &forest.loops[l].blocks {
                            full.insert(ib);
                        }
                        stack.extend(forest.loops[l].children.iter().copied());
                    }
                }
            }
            let mut full: Vec<usize> = full.into_iter().collect();
            full.sort_unstable();

            // Parent links: inner loops whose headers are in `body` become
            // children of this loop.
            let mut children = Vec::new();
            for (li, l) in forest.loops.iter_mut().enumerate() {
                if l.parent.is_none() && l.header != w && full.contains(&l.header) {
                    l.parent = Some(loop_idx);
                    children.push(li);
                }
            }
            forest.loops.push(Loop {
                header: w,
                blocks: full.clone(),
                latches,
                parent: None,
                children,
                irreducible,
            });
            // Innermost-loop map: blocks not yet assigned belong to this loop.
            for &b in &full {
                if forest.loop_of[b].is_none() {
                    forest.loop_of[b] = Some(loop_idx);
                } else {
                    // keep innermost; but headers of inner loops map to inner
                }
            }
            forest.loop_of[w] = Some(loop_idx);
            // Collapse the loop into its header for outer processing.
            for &b in &body {
                let r = find(&mut uf, b);
                uf[r] = w;
            }
        }
        forest
    }

    /// True if the function has any loops.
    pub fn has_loops(&self) -> bool {
        !self.loops.is_empty()
    }

    /// True if any loop is irreducible.
    pub fn has_irreducible(&self) -> bool {
        self.loops.iter().any(|l| l.irreducible)
    }

    /// Indices of top-level (outermost) loops.
    pub fn top_level(&self) -> Vec<usize> {
        (0..self.loops.len())
            .filter(|&i| self.loops[i].parent.is_none())
            .collect()
    }

    /// Post-order traversal of the loop forest: inner loops before the
    /// loops that contain them — the unrolling order of §7.
    pub fn post_order(&self) -> Vec<usize> {
        // Discovery order already visits inner loops first (reverse DFS
        // preorder of headers), so the identity order is a valid post-order.
        (0..self.loops.len()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    fn forest_of(src: &str) -> (LoopForest, Cfg) {
        let f = parse_function(src).unwrap();
        let cfg = Cfg::new(&f);
        (LoopForest::new(&cfg), cfg)
    }

    #[test]
    fn straight_line_has_no_loops() {
        let (forest, _) = forest_of(
            r#"define void @f() {
entry:
  br label %exit
exit:
  ret void
}"#,
        );
        assert!(!forest.has_loops());
    }

    #[test]
    fn single_loop() {
        let (forest, _) = forest_of(
            r#"define void @f(i1 %c) {
entry:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  br label %head
exit:
  ret void
}"#,
        );
        assert_eq!(forest.loops.len(), 1);
        let l = &forest.loops[0];
        assert_eq!(l.header, 1);
        assert!(l.blocks.contains(&1) && l.blocks.contains(&2));
        assert!(!l.blocks.contains(&0) && !l.blocks.contains(&3));
        assert_eq!(l.latches, vec![2]);
        assert!(!l.irreducible);
    }

    #[test]
    fn self_loop() {
        let (forest, _) = forest_of(
            r#"define void @f(i1 %c) {
entry:
  br label %spin
spin:
  br i1 %c, label %spin, label %exit
exit:
  ret void
}"#,
        );
        assert_eq!(forest.loops.len(), 1);
        assert_eq!(forest.loops[0].header, 1);
        assert_eq!(forest.loops[0].latches, vec![1]);
    }

    #[test]
    fn nested_loops() {
        let (forest, _) = forest_of(
            r#"define void @f(i1 %c1, i1 %c2) {
entry:
  br label %outer
outer:
  br label %inner
inner:
  br i1 %c1, label %inner, label %outer_latch
outer_latch:
  br i1 %c2, label %outer, label %exit
exit:
  ret void
}"#,
        );
        assert_eq!(forest.loops.len(), 2);
        // Inner loop discovered first (reverse DFS preorder).
        let inner = forest
            .loops
            .iter()
            .position(|l| l.header == 2)
            .expect("inner loop at block 2");
        let outer = forest
            .loops
            .iter()
            .position(|l| l.header == 1)
            .expect("outer loop at block 1");
        assert_eq!(forest.loops[inner].parent, Some(outer));
        assert!(forest.loops[outer].children.contains(&inner));
        assert!(forest.loops[outer].blocks.contains(&2));
        assert!(forest.loops[outer].blocks.contains(&3));
        // post_order puts inner before outer
        let po = forest.post_order();
        assert!(po.iter().position(|&i| i == inner) < po.iter().position(|&i| i == outer));
    }

    #[test]
    fn two_sibling_loops() {
        let (forest, _) = forest_of(
            r#"define void @f(i1 %c) {
entry:
  br label %l1
l1:
  br i1 %c, label %l1, label %mid
mid:
  br label %l2
l2:
  br i1 %c, label %l2, label %exit
exit:
  ret void
}"#,
        );
        assert_eq!(forest.loops.len(), 2);
        assert!(forest.loops.iter().all(|l| l.parent.is_none()));
    }

    #[test]
    fn irreducible_loop_detected() {
        // Two-entry cycle between a and b.
        let (forest, _) = forest_of(
            r#"define void @f(i1 %c, i1 %d) {
entry:
  br i1 %c, label %a, label %b
a:
  br i1 %d, label %b, label %exit
b:
  br i1 %d, label %a, label %exit
exit:
  ret void
}"#,
        );
        assert!(forest.has_irreducible());
    }
}

//! Programmatic construction of IR functions.
//!
//! Used by the optimizer tests and the synthetic-application generator; a
//! thin, non-consuming builder (one per function) that tracks the current
//! insertion block.

use crate::constant::Constant;
use crate::function::{Block, FnAttrs, Function, Param};
use crate::instruction::{
    BinOpKind, CastKind, ICmpPred, InstOp, Instruction, Operand, ParamAttrs, WrapFlags,
};
use crate::types::Type;

/// Builds one [`Function`] incrementally.
///
/// # Examples
///
/// ```
/// use alive2_ir::builder::FunctionBuilder;
/// use alive2_ir::types::Type;
/// use alive2_ir::instruction::{BinOpKind, Operand, WrapFlags};
///
/// let mut b = FunctionBuilder::new("double_it", Type::i32());
/// let x = b.param("x", Type::i32());
/// b.block("entry");
/// let t = b.bin(BinOpKind::Add, WrapFlags::none(), Type::i32(), x.clone(), x);
/// b.ret(Type::i32(), t);
/// let f = b.finish();
/// assert!(f.to_string().contains("add i32 %x, %x"));
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    next_reg: u32,
}

impl FunctionBuilder {
    /// Starts a function with a name and return type.
    pub fn new(name: impl Into<String>, ret_ty: Type) -> FunctionBuilder {
        FunctionBuilder {
            func: Function::new(name, ret_ty),
            next_reg: 0,
        }
    }

    /// Adds a parameter and returns an operand referring to it.
    pub fn param(&mut self, name: impl Into<String>, ty: Type) -> Operand {
        let name = name.into();
        self.func.params.push(Param {
            name: name.clone(),
            ty,
            attrs: ParamAttrs::default(),
        });
        Operand::Reg(name)
    }

    /// Adds a parameter with attributes.
    pub fn param_with_attrs(
        &mut self,
        name: impl Into<String>,
        ty: Type,
        attrs: ParamAttrs,
    ) -> Operand {
        let name = name.into();
        self.func.params.push(Param {
            name: name.clone(),
            ty,
            attrs,
        });
        Operand::Reg(name)
    }

    /// Sets function attributes.
    pub fn attrs(&mut self, attrs: FnAttrs) -> &mut Self {
        self.func.attrs = attrs;
        self
    }

    /// Opens a new block and makes it current.
    pub fn block(&mut self, name: impl Into<String>) -> &mut Self {
        self.func.blocks.push(Block::new(name));
        self
    }

    fn fresh(&mut self) -> String {
        loop {
            let name = format!("v{}", self.next_reg);
            self.next_reg += 1;
            if !self.func.def_types().contains_key(&name) {
                return name;
            }
        }
    }

    fn push_valued(&mut self, op: InstOp) -> Operand {
        let name = self.fresh();
        self.cur().insts.push(Instruction::with_result(&name, op));
        Operand::Reg(name)
    }

    /// Appends an arbitrary value-producing instruction.
    pub fn inst(&mut self, op: InstOp) -> Operand {
        self.push_valued(op)
    }

    /// Appends an arbitrary non-value instruction.
    pub fn stmt(&mut self, op: InstOp) -> &mut Self {
        self.cur().insts.push(Instruction::stmt(op));
        self
    }

    fn cur(&mut self) -> &mut Block {
        self.func
            .blocks
            .last_mut()
            .expect("open a block before inserting instructions")
    }

    /// Integer binary operation.
    pub fn bin(
        &mut self,
        op: BinOpKind,
        flags: WrapFlags,
        ty: Type,
        lhs: Operand,
        rhs: Operand,
    ) -> Operand {
        self.push_valued(InstOp::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        })
    }

    /// Integer comparison.
    pub fn icmp(&mut self, pred: ICmpPred, ty: Type, lhs: Operand, rhs: Operand) -> Operand {
        self.push_valued(InstOp::ICmp { pred, ty, lhs, rhs })
    }

    /// Select.
    pub fn select(&mut self, cond: Operand, ty: Type, tval: Operand, fval: Operand) -> Operand {
        self.push_valued(InstOp::Select {
            cond,
            ty,
            tval,
            fval,
        })
    }

    /// Freeze.
    pub fn freeze(&mut self, ty: Type, val: Operand) -> Operand {
        self.push_valued(InstOp::Freeze { ty, val })
    }

    /// Cast.
    pub fn cast(&mut self, kind: CastKind, from_ty: Type, val: Operand, to_ty: Type) -> Operand {
        self.push_valued(InstOp::Cast {
            kind,
            from_ty,
            val,
            to_ty,
        })
    }

    /// φ node.
    pub fn phi(&mut self, ty: Type, incoming: Vec<(Operand, String)>) -> Operand {
        self.push_valued(InstOp::Phi { ty, incoming })
    }

    /// Call.
    pub fn call(
        &mut self,
        ty: Type,
        callee: impl Into<String>,
        args: Vec<(Type, Operand)>,
    ) -> Operand {
        let args = args
            .into_iter()
            .map(|(t, v)| (t, v, ParamAttrs::default()))
            .collect();
        let op = InstOp::Call {
            ty: ty.clone(),
            callee: callee.into(),
            args,
        };
        if ty == Type::Void {
            self.stmt(op);
            Operand::Const(Constant::ZeroInit(Type::Void))
        } else {
            self.push_valued(op)
        }
    }

    /// Stack allocation.
    pub fn alloca(&mut self, elem_ty: Type, align: u64) -> Operand {
        self.push_valued(InstOp::Alloca {
            elem_ty,
            count: Operand::int(64, 1),
            align,
        })
    }

    /// Load.
    pub fn load(&mut self, ty: Type, ptr: Operand, align: u64) -> Operand {
        self.push_valued(InstOp::Load { ty, ptr, align })
    }

    /// Store.
    pub fn store(&mut self, ty: Type, val: Operand, ptr: Operand, align: u64) -> &mut Self {
        self.stmt(InstOp::Store {
            ty,
            val,
            ptr,
            align,
        })
    }

    /// GEP.
    pub fn gep(
        &mut self,
        inbounds: bool,
        elem_ty: Type,
        ptr: Operand,
        indices: Vec<(Type, Operand)>,
    ) -> Operand {
        self.push_valued(InstOp::Gep {
            inbounds,
            elem_ty,
            ptr,
            indices,
        })
    }

    /// `ret <ty> <val>`.
    pub fn ret(&mut self, ty: Type, val: Operand) -> &mut Self {
        self.stmt(InstOp::Ret {
            val: Some((ty, val)),
        })
    }

    /// `ret void`.
    pub fn ret_void(&mut self) -> &mut Self {
        self.stmt(InstOp::Ret { val: None })
    }

    /// Unconditional branch.
    pub fn br(&mut self, dest: impl Into<String>) -> &mut Self {
        self.stmt(InstOp::Br { dest: dest.into() })
    }

    /// Conditional branch.
    pub fn cond_br(
        &mut self,
        cond: Operand,
        then_dest: impl Into<String>,
        else_dest: impl Into<String>,
    ) -> &mut Self {
        self.stmt(InstOp::CondBr {
            cond,
            then_dest: then_dest.into(),
            else_dest: else_dest.into(),
        })
    }

    /// `unreachable`.
    pub fn unreachable(&mut self) -> &mut Self {
        self.stmt(InstOp::Unreachable)
    }

    /// Finalizes and returns the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn builds_verifiable_function() {
        let mut b = FunctionBuilder::new("max", Type::i32());
        let x = b.param("x", Type::i32());
        let y = b.param("y", Type::i32());
        b.block("entry");
        let c = b.icmp(ICmpPred::Sgt, Type::i32(), x.clone(), y.clone());
        let m = b.select(c, Type::i32(), x, y);
        b.ret(Type::i32(), m);
        let f = b.finish();
        assert!(verify_function(&f).is_empty());
        assert!(f.to_string().contains("icmp sgt i32 %x, %y"));
    }

    #[test]
    fn builds_branches_and_phis() {
        let mut b = FunctionBuilder::new("abs", Type::i32());
        let x = b.param("x", Type::i32());
        b.block("entry");
        let neg = b.icmp(ICmpPred::Slt, Type::i32(), x.clone(), Operand::int(32, 0));
        b.cond_br(neg, "flip", "join");
        b.block("flip");
        let n = b.bin(
            BinOpKind::Sub,
            WrapFlags::none(),
            Type::i32(),
            Operand::int(32, 0),
            x.clone(),
        );
        b.br("join");
        b.block("join");
        let r = b.phi(Type::i32(), vec![(x, "entry".into()), (n, "flip".into())]);
        b.ret(Type::i32(), r);
        let f = b.finish();
        assert!(verify_function(&f).is_empty(), "{f}");
    }

    #[test]
    fn fresh_registers_do_not_collide_with_params() {
        let mut b = FunctionBuilder::new("f", Type::i32());
        let v0 = b.param("v0", Type::i32());
        b.block("entry");
        let t = b.bin(
            BinOpKind::Add,
            WrapFlags::none(),
            Type::i32(),
            v0.clone(),
            v0,
        );
        b.ret(Type::i32(), t.clone());
        let f = b.finish();
        assert_ne!(t.as_reg(), Some("v0"));
        assert!(verify_function(&f).is_empty());
    }
}

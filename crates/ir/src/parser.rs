//! Parser for the textual LLVM IR subset supported by Alive2-rs.
//!
//! The grammar follows LLVM's assembly syntax with opaque pointers (`ptr`).
//! Unsupported top-level entities (`target …`, `source_filename`, metadata)
//! are skipped; unsupported instructions produce an error naming the
//! offending construct so the validator can report the function as
//! *unsupported* rather than wrong (paper §3.8).

use crate::constant::{f64_to_f16_bits, Constant};
use crate::function::{Block, FnAttrs, Function, Param};
use crate::instruction::{
    BinOpKind, CastKind, FBinOpKind, FCmpPred, FastMathFlags, ICmpPred, InstOp, Instruction,
    Operand, ParamAttrs, WrapFlags,
};
use crate::module::{FuncDecl, GlobalVar, Module};
use crate::types::{FloatKind, Type};
use alive2_smt::bv::BitVec;
use std::fmt;

/// A parse error with 1-based line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

/// Largest accepted `iN` width — LLVM's own `IntegerType` cap (2^23).
const MAX_INT_BITS: u32 = 1 << 23;
/// Vector-lane and array-length bounds. Each lane/element is encoded
/// individually downstream, so hostile counts (`<4294967297 x i8>`) must
/// fail at parse time instead of truncating through `as u32` or eating
/// the encoder's memory budget.
const MAX_VEC_LANES: i128 = 1 << 16;
const MAX_ARRAY_LEN: i128 = 1 << 24;

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    Ident(String),
    Local(String),
    Global(String),
    Int(i128),
    Float(f64),
    HexBits(u64),
    HexHalf(u16),
    LParen,
    RParen,
    Lt,
    Gt,
    LBracket,
    RBracket,
    LBrace,
    RBrace,
    Comma,
    Eq,
    Colon,
    Star,
    Eof,
}

struct Lexer {
    toks: Vec<(Tok, u32)>,
    pos: usize,
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-' || c == '$'
}

fn lex(src: &str) -> Result<Lexer> {
    let mut toks = Vec::new();
    let mut line = 1u32;
    let mut it = src.chars().peekable();
    while let Some(&c) = it.peek() {
        match c {
            '\n' => {
                line += 1;
                it.next();
            }
            ' ' | '\t' | '\r' => {
                it.next();
            }
            ';' => {
                while let Some(&c) = it.peek() {
                    if c == '\n' {
                        break;
                    }
                    it.next();
                }
            }
            '(' => {
                it.next();
                toks.push((Tok::LParen, line));
            }
            ')' => {
                it.next();
                toks.push((Tok::RParen, line));
            }
            '<' => {
                it.next();
                toks.push((Tok::Lt, line));
            }
            '>' => {
                it.next();
                toks.push((Tok::Gt, line));
            }
            '[' => {
                it.next();
                toks.push((Tok::LBracket, line));
            }
            ']' => {
                it.next();
                toks.push((Tok::RBracket, line));
            }
            '{' => {
                it.next();
                toks.push((Tok::LBrace, line));
            }
            '}' => {
                it.next();
                toks.push((Tok::RBrace, line));
            }
            ',' => {
                it.next();
                toks.push((Tok::Comma, line));
            }
            '=' => {
                it.next();
                toks.push((Tok::Eq, line));
            }
            ':' => {
                it.next();
                toks.push((Tok::Colon, line));
            }
            '*' => {
                it.next();
                toks.push((Tok::Star, line));
            }
            '%' | '@' => {
                let sigil = c;
                it.next();
                let mut name = String::new();
                if it.peek() == Some(&'"') {
                    it.next();
                    while let Some(&c) = it.peek() {
                        if c == '"' {
                            it.next();
                            break;
                        }
                        name.push(c);
                        it.next();
                    }
                } else {
                    while let Some(&c) = it.peek() {
                        if is_ident_char(c) {
                            name.push(c);
                            it.next();
                        } else {
                            break;
                        }
                    }
                }
                if name.is_empty() {
                    return Err(ParseError {
                        message: format!("empty name after `{sigil}`"),
                        line,
                    });
                }
                toks.push((
                    if sigil == '%' {
                        Tok::Local(name)
                    } else {
                        Tok::Global(name)
                    },
                    line,
                ));
            }
            '"' => {
                // string constants (e.g. in globals) — consume and ignore
                it.next();
                while let Some(&c) = it.peek() {
                    it.next();
                    if c == '"' {
                        break;
                    }
                }
                toks.push((Tok::Ident("\"str\"".into()), line));
            }
            c if c.is_ascii_digit() || c == '-' || c == '+' => {
                let mut s = String::new();
                s.push(c);
                it.next();
                // hex literal?
                if c == '0' && it.peek() == Some(&'x') {
                    it.next();
                    let mut kind = ' ';
                    if let Some(&k) = it.peek() {
                        if k == 'H' || k == 'K' || k == 'L' || k == 'M' {
                            kind = k;
                            it.next();
                        }
                    }
                    let mut hex = String::new();
                    while let Some(&h) = it.peek() {
                        if h.is_ascii_hexdigit() {
                            hex.push(h);
                            it.next();
                        } else {
                            break;
                        }
                    }
                    let v = u64::from_str_radix(&hex, 16).map_err(|e| ParseError {
                        message: format!("bad hex literal: {e}"),
                        line,
                    })?;
                    if kind == 'H' {
                        toks.push((Tok::HexHalf(v as u16), line));
                    } else {
                        toks.push((Tok::HexBits(v), line));
                    }
                    continue;
                }
                let mut is_float = false;
                while let Some(&d) = it.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        it.next();
                    } else if d == '.' || d == 'e' || d == 'E' {
                        is_float = true;
                        s.push(d);
                        it.next();
                        if d == 'e' || d == 'E' {
                            if let Some(&sign @ ('+' | '-')) = it.peek() {
                                s.push(sign);
                                it.next();
                            }
                        }
                    } else {
                        break;
                    }
                }
                if is_float {
                    let v: f64 = s.parse().map_err(|e| ParseError {
                        message: format!("bad float literal `{s}`: {e}"),
                        line,
                    })?;
                    toks.push((Tok::Float(v), line));
                } else {
                    let v: i128 = s.parse().map_err(|e| ParseError {
                        message: format!("bad integer literal `{s}`: {e}"),
                        line,
                    })?;
                    toks.push((Tok::Int(v), line));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = it.peek() {
                    if is_ident_char(d) {
                        s.push(d);
                        it.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident(s), line));
            }
            '#' | '!' => {
                // attribute group / metadata reference: skip token
                it.next();
                while let Some(&d) = it.peek() {
                    if is_ident_char(d) {
                        it.next();
                    } else {
                        break;
                    }
                }
                toks.push((Tok::Ident("!md".into()), line));
            }
            other => {
                return Err(ParseError {
                    message: format!("unexpected character `{other}`"),
                    line,
                })
            }
        }
    }
    toks.push((Tok::Eof, line));
    Ok(Lexer { toks, pos: 0 })
}

impl Lexer {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].0
    }

    fn line(&self) -> u32 {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        if *self.peek() == t {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected {t:?}, found {:?}", self.peek()))
        }
    }

    fn accept(&mut self, t: &Tok) -> bool {
        if self.peek() == t {
            self.next();
            true
        } else {
            false
        }
    }

    fn accept_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Tok::Ident(s) if s == kw) {
            self.next();
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<()> {
        if self.accept_ident(kw) {
            Ok(())
        } else {
            self.err(format!("expected `{kw}`, found {:?}", self.peek()))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Tok::Ident(s) => Ok(s),
            other => self.err(format!("expected identifier, found {other:?}")),
        }
    }

    fn local(&mut self) -> Result<String> {
        match self.next() {
            Tok::Local(s) => Ok(s),
            other => self.err(format!("expected %name, found {other:?}")),
        }
    }

    fn global(&mut self) -> Result<String> {
        match self.next() {
            Tok::Global(s) => Ok(s),
            other => self.err(format!("expected @name, found {other:?}")),
        }
    }

    fn int(&mut self) -> Result<i128> {
        match self.next() {
            Tok::Int(v) => Ok(v),
            other => self.err(format!("expected integer, found {other:?}")),
        }
    }
}

/// Parses a module from LLVM-style textual IR.
///
/// # Errors
///
/// Returns a [`ParseError`] with line information on malformed or
/// unsupported input.
///
/// # Examples
///
/// ```
/// let m = alive2_ir::parser::parse_module(r#"
/// define i32 @id(i32 %x) {
/// entry:
///   ret i32 %x
/// }
/// "#).unwrap();
/// assert_eq!(m.functions.len(), 1);
/// ```
pub fn parse_module(src: &str) -> Result<Module> {
    let _sp = alive2_obs::span(alive2_obs::Phase::Parse);
    let mut lx = lex(src)?;
    let mut module = Module::new();
    loop {
        match lx.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(kw) if kw == "define" => {
                module.functions.push(parse_define(&mut lx)?);
            }
            Tok::Ident(kw) if kw == "declare" => {
                module.declares.push(parse_declare(&mut lx)?);
            }
            Tok::Ident(kw) if kw == "target" || kw == "source_filename" => {
                // skip to end of logical line: consume tokens on same line
                let line = lx.line();
                while lx.line() == line && *lx.peek() != Tok::Eof {
                    lx.next();
                }
            }
            Tok::Global(_) => {
                module.globals.push(parse_global(&mut lx)?);
            }
            other => return lx.err(format!("unexpected top-level token {other:?}")),
        }
    }
    Ok(module)
}

/// Parses a single function from source containing exactly one `define`.
pub fn parse_function(src: &str) -> Result<Function> {
    let m = parse_module(src)?;
    m.functions.into_iter().next().ok_or(ParseError {
        message: "no function definition found".into(),
        line: 1,
    })
}

fn parse_global(lx: &mut Lexer) -> Result<GlobalVar> {
    let name = lx.global()?;
    lx.expect(Tok::Eq)?;
    // skip linkage/visibility words
    let mut is_const = false;
    loop {
        match lx.peek() {
            Tok::Ident(s) if s == "constant" => {
                is_const = true;
                lx.next();
                break;
            }
            Tok::Ident(s) if s == "global" => {
                lx.next();
                break;
            }
            Tok::Ident(s)
                if [
                    "private",
                    "internal",
                    "external",
                    "linkonce",
                    "weak",
                    "common",
                    "appending",
                    "dso_local",
                    "local_unnamed_addr",
                    "unnamed_addr",
                    "hidden",
                    "protected",
                ]
                .contains(&s.as_str()) =>
            {
                lx.next();
            }
            _ => return lx.err("expected `global` or `constant`"),
        }
    }
    let ty = parse_type(lx)?;
    let init = if matches!(
        lx.peek(),
        Tok::Int(_)
            | Tok::Float(_)
            | Tok::HexBits(_)
            | Tok::HexHalf(_)
            | Tok::Lt
            | Tok::LBracket
            | Tok::LBrace
    ) || matches!(lx.peek(), Tok::Ident(s) if ["zeroinitializer", "undef", "poison", "null", "true", "false", "\"str\""].contains(&s.as_str()))
    {
        Some(parse_constant(lx, &ty)?)
    } else {
        None
    };
    let mut align = 0;
    while lx.accept(&Tok::Comma) {
        if lx.accept_ident("align") {
            align = lx.int()? as u64;
        } else {
            // skip unknown trailing attribute
            lx.next();
        }
    }
    Ok(GlobalVar {
        name,
        ty,
        init,
        is_const,
        align,
    })
}

fn parse_declare(lx: &mut Lexer) -> Result<FuncDecl> {
    lx.expect_ident("declare")?;
    let mut attrs = FnAttrs::default();
    skip_fn_prefix_attrs(lx, &mut attrs);
    let ret_ty = parse_type(lx)?;
    let name = lx.global()?;
    lx.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !lx.accept(&Tok::RParen) {
        loop {
            if lx.accept_ident("...") {
                // varargs: ignore
            } else {
                let t = parse_type(lx)?;
                skip_param_attrs(lx);
                // optional name
                if matches!(lx.peek(), Tok::Local(_)) {
                    lx.next();
                }
                params.push(t);
            }
            if lx.accept(&Tok::RParen) {
                break;
            }
            lx.expect(Tok::Comma)?;
        }
    }
    parse_fn_suffix_attrs(lx, &mut attrs);
    Ok(FuncDecl {
        name,
        ret_ty,
        params,
        attrs,
    })
}

fn skip_fn_prefix_attrs(lx: &mut Lexer, _attrs: &mut FnAttrs) {
    loop {
        match lx.peek() {
            Tok::Ident(s)
                if [
                    "dso_local",
                    "internal",
                    "private",
                    "external",
                    "hidden",
                    "protected",
                    "fastcc",
                    "ccc",
                    "noundef",
                    "local_unnamed_addr",
                ]
                .contains(&s.as_str()) =>
            {
                lx.next();
            }
            _ => break,
        }
    }
}

fn parse_fn_suffix_attrs(lx: &mut Lexer, attrs: &mut FnAttrs) {
    loop {
        match lx.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "mustprogress" => {
                    attrs.mustprogress = true;
                    lx.next();
                }
                "noreturn" => {
                    attrs.noreturn = true;
                    lx.next();
                }
                "willreturn" => {
                    attrs.willreturn = true;
                    lx.next();
                }
                "readnone" => {
                    attrs.readnone = true;
                    lx.next();
                }
                "readonly" => {
                    attrs.readonly = true;
                    lx.next();
                }
                "memory" => {
                    lx.next();
                    if lx.accept(&Tok::LParen) {
                        let mut spec = String::new();
                        while !lx.accept(&Tok::RParen) {
                            if let Tok::Ident(w) = lx.peek() {
                                spec.push_str(w);
                            }
                            lx.next();
                        }
                        if spec == "none" {
                            attrs.readnone = true;
                        } else if spec == "read" {
                            attrs.readonly = true;
                        }
                    }
                }
                "nounwind" | "norecurse" | "nosync" | "nofree" | "speculatable"
                | "alwaysinline" | "inlinehint" | "noinline" | "optnone" | "!md" => {
                    lx.next();
                }
                _ => break,
            },
            _ => break,
        }
    }
}

fn skip_param_attrs(lx: &mut Lexer) -> ParamAttrs {
    let mut attrs = ParamAttrs::default();
    loop {
        match lx.peek().clone() {
            Tok::Ident(s) => match s.as_str() {
                "nonnull" => {
                    attrs.nonnull = true;
                    lx.next();
                }
                "noundef" => {
                    attrs.noundef = true;
                    lx.next();
                }
                "align" | "dereferenceable" => {
                    lx.next();
                    // argument: integer or (N)
                    if lx.accept(&Tok::LParen) {
                        let _ = lx.int();
                        let _ = lx.expect(Tok::RParen);
                    } else {
                        let _ = lx.int();
                    }
                }
                "nocapture" | "readonly" | "writeonly" | "byval" | "sret" | "zeroext"
                | "signext" | "returned" | "noalias" => {
                    lx.next();
                }
                _ => break,
            },
            _ => break,
        }
    }
    attrs
}

fn parse_define(lx: &mut Lexer) -> Result<Function> {
    lx.expect_ident("define")?;
    let mut attrs = FnAttrs::default();
    skip_fn_prefix_attrs(lx, &mut attrs);
    let ret_ty = parse_type(lx)?;
    let name = lx.global()?;
    lx.expect(Tok::LParen)?;
    let mut params = Vec::new();
    if !lx.accept(&Tok::RParen) {
        loop {
            let ty = parse_type(lx)?;
            let pattrs = skip_param_attrs(lx);
            let pname = match lx.peek() {
                Tok::Local(_) => lx.local()?,
                _ => format!("{}", params.len()),
            };
            params.push(Param {
                name: pname,
                ty,
                attrs: pattrs,
            });
            if lx.accept(&Tok::RParen) {
                break;
            }
            lx.expect(Tok::Comma)?;
        }
    }
    parse_fn_suffix_attrs(lx, &mut attrs);
    lx.expect(Tok::LBrace)?;
    let mut blocks: Vec<Block> = Vec::new();
    let mut counter = params.len(); // for anonymous %N naming compat
    loop {
        if lx.accept(&Tok::RBrace) {
            break;
        }
        // A label? `name:`
        let is_label =
            matches!(lx.peek(), Tok::Ident(_) | Tok::Int(_)) && *lx.peek2() == Tok::Colon;
        if is_label {
            let label = match lx.next() {
                Tok::Ident(s) => s,
                Tok::Int(v) => v.to_string(),
                // `is_label` peeked Ident/Int, but untrusted input earns an
                // error over an unreachable! if peek and next ever disagree.
                other => return lx.err(format!("expected label, found {other:?}")),
            };
            lx.expect(Tok::Colon)?;
            blocks.push(Block::new(label));
            continue;
        }
        if blocks.is_empty() {
            blocks.push(Block::new("entry"));
        }
        let inst = parse_instruction(lx, &mut counter)?;
        match blocks.last_mut() {
            Some(block) => block.insts.push(inst),
            // Unreachable (an implicit entry block is pushed above), but
            // untrusted input earns an error over an unwrap.
            None => return lx.err("instruction outside any basic block"),
        }
    }
    Ok(Function {
        name,
        ret_ty,
        params,
        blocks,
        attrs,
    })
}

fn parse_type(lx: &mut Lexer) -> Result<Type> {
    let t = match lx.peek().clone() {
        Tok::Ident(s) => match s.as_str() {
            "void" => {
                lx.next();
                Type::Void
            }
            "ptr" => {
                lx.next();
                Type::Ptr
            }
            "half" => {
                lx.next();
                Type::Float(FloatKind::Half)
            }
            "float" => {
                lx.next();
                Type::Float(FloatKind::Single)
            }
            "double" => {
                lx.next();
                Type::Float(FloatKind::Double)
            }
            _ if s.starts_with('i') && s[1..].chars().all(|c| c.is_ascii_digit()) => {
                lx.next();
                let w: u32 = s[1..].parse().map_err(|_| ParseError {
                    message: format!("bad integer type `{s}`"),
                    line: lx.line(),
                })?;
                if w == 0 {
                    return lx.err("integer width must be positive");
                }
                // LLVM caps IntegerType at 2^23 bits; a hostile `i999999999`
                // must fail here, not allocate megabytes per literal later.
                if w > MAX_INT_BITS {
                    return lx.err(format!("integer width {w} exceeds {MAX_INT_BITS}"));
                }
                Type::Int(w)
            }
            _ => return lx.err(format!("unknown type `{s}`")),
        },
        Tok::Lt => {
            lx.next();
            let n = lx.int()?;
            // Validated before the u32 narrowing: `<4294967297 x i8>` must
            // be an error, not silently truncate to a 1-lane vector, and
            // LLVM requires at least one lane.
            if !(1..=MAX_VEC_LANES).contains(&n) {
                return lx.err(format!("bad vector lane count `{n}`"));
            }
            lx.expect_ident("x")?;
            let elem = parse_type(lx)?;
            lx.expect(Tok::Gt)?;
            Type::vec(n as u32, elem)
        }
        Tok::LBracket => {
            lx.next();
            let n = lx.int()?;
            if !(0..=MAX_ARRAY_LEN).contains(&n) {
                return lx.err(format!("bad array length `{n}`"));
            }
            lx.expect_ident("x")?;
            let elem = parse_type(lx)?;
            lx.expect(Tok::RBracket)?;
            Type::array(n as u32, elem)
        }
        Tok::LBrace => {
            lx.next();
            let mut fields = Vec::new();
            if !lx.accept(&Tok::RBrace) {
                loop {
                    fields.push(parse_type(lx)?);
                    if lx.accept(&Tok::RBrace) {
                        break;
                    }
                    lx.expect(Tok::Comma)?;
                }
            }
            Type::Struct(fields)
        }
        other => return lx.err(format!("expected type, found {other:?}")),
    };
    // legacy typed pointers `i32*`
    let mut t = t;
    while lx.accept(&Tok::Star) {
        t = Type::Ptr;
    }
    Ok(t)
}

fn float_const(ty: &Type, value: f64, lx: &Lexer) -> Result<Constant> {
    match ty {
        Type::Float(k) => Ok(Constant::float(*k, value)),
        other => Err(ParseError {
            message: format!("float literal for non-float type {other}"),
            line: lx.line(),
        }),
    }
}

fn parse_constant(lx: &mut Lexer, ty: &Type) -> Result<Constant> {
    match lx.peek().clone() {
        Tok::Int(v) => {
            lx.next();
            match ty {
                Type::Int(w) => Ok(Constant::Int(BitVec::from_i128(*w, v))),
                Type::Float(_) => float_const(ty, v as f64, lx),
                other => lx.err(format!("integer literal for type {other}")),
            }
        }
        Tok::Float(v) => {
            lx.next();
            float_const(ty, v, lx)
        }
        Tok::HexBits(bits) => {
            lx.next();
            match ty {
                Type::Float(FloatKind::Double) => Ok(Constant::Float(
                    FloatKind::Double,
                    BitVec::from_u64(64, bits),
                )),
                Type::Float(FloatKind::Single) => {
                    // LLVM writes float literals as double bits.
                    let f = f64::from_bits(bits) as f32;
                    Ok(Constant::Float(
                        FloatKind::Single,
                        BitVec::from_u64(32, f.to_bits() as u64),
                    ))
                }
                Type::Float(FloatKind::Half) => {
                    let h = f64_to_f16_bits(f64::from_bits(bits));
                    Ok(Constant::Float(
                        FloatKind::Half,
                        BitVec::from_u64(16, h as u64),
                    ))
                }
                Type::Int(w) => Ok(Constant::Int(BitVec::from_u64(*w, bits))),
                other => lx.err(format!("hex literal for type {other}")),
            }
        }
        Tok::HexHalf(bits) => {
            lx.next();
            Ok(Constant::Float(
                FloatKind::Half,
                BitVec::from_u64(16, bits as u64),
            ))
        }
        Tok::Ident(s) => match s.as_str() {
            "true" => {
                lx.next();
                Ok(Constant::bool(true))
            }
            "false" => {
                lx.next();
                Ok(Constant::bool(false))
            }
            "null" => {
                lx.next();
                Ok(Constant::Null)
            }
            "undef" => {
                lx.next();
                Ok(Constant::Undef(ty.clone()))
            }
            "poison" => {
                lx.next();
                Ok(Constant::Poison(ty.clone()))
            }
            "zeroinitializer" => {
                lx.next();
                Ok(Constant::ZeroInit(ty.clone()))
            }
            "\"str\"" => {
                lx.next();
                Ok(Constant::ZeroInit(ty.clone()))
            }
            other => lx.err(format!("unknown constant `{other}`")),
        },
        Tok::Global(_) => Ok(Constant::Global(lx.global()?)),
        Tok::Lt | Tok::LBracket | Tok::LBrace => {
            let (open, close) = match lx.next() {
                Tok::Lt => (Tok::Lt, Tok::Gt),
                Tok::LBracket => (Tok::LBracket, Tok::RBracket),
                _ => (Tok::LBrace, Tok::RBrace),
            };
            let _ = open;
            let mut elems = Vec::new();
            if !lx.accept(&close) {
                loop {
                    let ety = parse_type(lx)?;
                    let c = parse_constant(lx, &ety)?;
                    elems.push(c);
                    if lx.accept(&close) {
                        break;
                    }
                    lx.expect(Tok::Comma)?;
                }
            }
            Ok(Constant::Aggregate(ty.clone(), elems))
        }
        other => lx.err(format!("expected constant, found {other:?}")),
    }
}

fn parse_operand(lx: &mut Lexer, ty: &Type) -> Result<Operand> {
    match lx.peek() {
        Tok::Local(_) => Ok(Operand::Reg(lx.local()?)),
        _ => Ok(Operand::Const(parse_constant(lx, ty)?)),
    }
}

fn parse_wrap_flags(lx: &mut Lexer) -> WrapFlags {
    let mut flags = WrapFlags::none();
    loop {
        if lx.accept_ident("nuw") {
            flags.nuw = true;
        } else if lx.accept_ident("nsw") {
            flags.nsw = true;
        } else if lx.accept_ident("exact") {
            flags.exact = true;
        } else {
            break;
        }
    }
    flags
}

fn parse_fmf(lx: &mut Lexer) -> FastMathFlags {
    let mut fmf = FastMathFlags::none();
    loop {
        if lx.accept_ident("nnan") {
            fmf.nnan = true;
        } else if lx.accept_ident("ninf") {
            fmf.ninf = true;
        } else if lx.accept_ident("nsz") {
            fmf.nsz = true;
        } else if lx.accept_ident("fast") {
            fmf.nnan = true;
            fmf.ninf = true;
            fmf.nsz = true;
        } else if lx.accept_ident("arcp")
            || lx.accept_ident("contract")
            || lx.accept_ident("afn")
            || lx.accept_ident("reassoc")
        {
            // accepted but not modeled
        } else {
            break;
        }
    }
    fmf
}

fn icmp_pred(s: &str) -> Option<ICmpPred> {
    Some(match s {
        "eq" => ICmpPred::Eq,
        "ne" => ICmpPred::Ne,
        "ugt" => ICmpPred::Ugt,
        "uge" => ICmpPred::Uge,
        "ult" => ICmpPred::Ult,
        "ule" => ICmpPred::Ule,
        "sgt" => ICmpPred::Sgt,
        "sge" => ICmpPred::Sge,
        "slt" => ICmpPred::Slt,
        "sle" => ICmpPred::Sle,
        _ => return None,
    })
}

fn fcmp_pred(s: &str) -> Option<FCmpPred> {
    Some(match s {
        "false" => FCmpPred::False,
        "oeq" => FCmpPred::Oeq,
        "ogt" => FCmpPred::Ogt,
        "oge" => FCmpPred::Oge,
        "olt" => FCmpPred::Olt,
        "ole" => FCmpPred::Ole,
        "one" => FCmpPred::One,
        "ord" => FCmpPred::Ord,
        "ueq" => FCmpPred::Ueq,
        "ugt" => FCmpPred::Ugt,
        "uge" => FCmpPred::Uge,
        "ult" => FCmpPred::Ult,
        "ule" => FCmpPred::Ule,
        "une" => FCmpPred::Une,
        "uno" => FCmpPred::Uno,
        "true" => FCmpPred::True,
        _ => return None,
    })
}

fn bin_kind(s: &str) -> Option<BinOpKind> {
    Some(match s {
        "add" => BinOpKind::Add,
        "sub" => BinOpKind::Sub,
        "mul" => BinOpKind::Mul,
        "udiv" => BinOpKind::UDiv,
        "sdiv" => BinOpKind::SDiv,
        "urem" => BinOpKind::URem,
        "srem" => BinOpKind::SRem,
        "shl" => BinOpKind::Shl,
        "lshr" => BinOpKind::LShr,
        "ashr" => BinOpKind::AShr,
        "and" => BinOpKind::And,
        "or" => BinOpKind::Or,
        "xor" => BinOpKind::Xor,
        _ => return None,
    })
}

fn fbin_kind(s: &str) -> Option<FBinOpKind> {
    Some(match s {
        "fadd" => FBinOpKind::FAdd,
        "fsub" => FBinOpKind::FSub,
        "fmul" => FBinOpKind::FMul,
        "fdiv" => FBinOpKind::FDiv,
        "frem" => FBinOpKind::FRem,
        _ => return None,
    })
}

fn cast_kind(s: &str) -> Option<CastKind> {
    Some(match s {
        "trunc" => CastKind::Trunc,
        "zext" => CastKind::ZExt,
        "sext" => CastKind::SExt,
        "bitcast" => CastKind::BitCast,
        "fptrunc" => CastKind::FPTrunc,
        "fpext" => CastKind::FPExt,
        "fptoui" => CastKind::FPToUI,
        "fptosi" => CastKind::FPToSI,
        "uitofp" => CastKind::UIToFP,
        "sitofp" => CastKind::SIToFP,
        _ => return None,
    })
}

fn parse_align_suffix(lx: &mut Lexer) -> Result<u64> {
    let mut align = 0;
    while lx.accept(&Tok::Comma) {
        if lx.accept_ident("align") {
            align = lx.int()? as u64;
        } else if matches!(lx.peek(), Tok::Ident(s) if s == "!md") {
            lx.next();
        } else {
            return Err(ParseError {
                message: format!("unexpected token after instruction: {:?}", lx.peek()),
                line: lx.line(),
            });
        }
    }
    Ok(align)
}

fn parse_instruction(lx: &mut Lexer, counter: &mut usize) -> Result<Instruction> {
    // Optional `%r =`
    let result = if matches!(lx.peek(), Tok::Local(_)) && *lx.peek2() == Tok::Eq {
        let name = lx.local()?;
        lx.expect(Tok::Eq)?;
        Some(name)
    } else {
        None
    };
    let _ = counter;
    let mnemonic = match lx.peek().clone() {
        Tok::Ident(s) => s,
        other => return lx.err(format!("expected instruction, found {other:?}")),
    };
    let op = parse_inst_op(lx, &mnemonic)?;
    // A value-producing op without an explicit result gets a synthesized
    // register only if it actually produces a value we must name.
    let result = match (&result, op.result_type()) {
        (Some(r), _) => Some(r.clone()),
        (None, Some(_)) => None, // unnamed result: value is dead
        (None, None) => None,
    };
    Ok(Instruction { result, op })
}

/// Rejects extractvalue/insertvalue index paths that leave the aggregate:
/// downstream type computation assumes every step lands on a field.
fn check_index_path(lx: &Lexer, agg_ty: &Type, indices: &[u32]) -> Result<()> {
    if indices.is_empty() {
        return lx.err("aggregate operation needs at least one index");
    }
    let mut t = agg_ty;
    for &i in indices {
        t = match t.try_field_type(i) {
            Some(t) => t,
            None => return lx.err(format!("aggregate index {i} out of bounds for `{t}`")),
        };
    }
    Ok(())
}

fn parse_inst_op(lx: &mut Lexer, mnemonic: &str) -> Result<InstOp> {
    if let Some(kind) = bin_kind(mnemonic) {
        lx.next();
        let flags = parse_wrap_flags(lx);
        let ty = parse_type(lx)?;
        let lhs = parse_operand(lx, &ty)?;
        lx.expect(Tok::Comma)?;
        let rhs = parse_operand(lx, &ty)?;
        return Ok(InstOp::Bin {
            op: kind,
            flags,
            ty,
            lhs,
            rhs,
        });
    }
    if let Some(kind) = fbin_kind(mnemonic) {
        lx.next();
        let fmf = parse_fmf(lx);
        let ty = parse_type(lx)?;
        let lhs = parse_operand(lx, &ty)?;
        lx.expect(Tok::Comma)?;
        let rhs = parse_operand(lx, &ty)?;
        return Ok(InstOp::FBin {
            op: kind,
            fmf,
            ty,
            lhs,
            rhs,
        });
    }
    if let Some(kind) = cast_kind(mnemonic) {
        lx.next();
        let from_ty = parse_type(lx)?;
        let val = parse_operand(lx, &from_ty)?;
        lx.expect_ident("to")?;
        let to_ty = parse_type(lx)?;
        return Ok(InstOp::Cast {
            kind,
            from_ty,
            val,
            to_ty,
        });
    }
    match mnemonic {
        "fneg" => {
            lx.next();
            let fmf = parse_fmf(lx);
            let ty = parse_type(lx)?;
            let val = parse_operand(lx, &ty)?;
            Ok(InstOp::FNeg { fmf, ty, val })
        }
        "icmp" => {
            lx.next();
            let p = lx.ident()?;
            let pred = icmp_pred(&p).ok_or_else(|| ParseError {
                message: format!("unknown icmp predicate `{p}`"),
                line: lx.line(),
            })?;
            let ty = parse_type(lx)?;
            let lhs = parse_operand(lx, &ty)?;
            lx.expect(Tok::Comma)?;
            let rhs = parse_operand(lx, &ty)?;
            Ok(InstOp::ICmp { pred, ty, lhs, rhs })
        }
        "fcmp" => {
            lx.next();
            let _fmf = parse_fmf(lx);
            let p = lx.ident()?;
            let pred = fcmp_pred(&p).ok_or_else(|| ParseError {
                message: format!("unknown fcmp predicate `{p}`"),
                line: lx.line(),
            })?;
            let ty = parse_type(lx)?;
            let lhs = parse_operand(lx, &ty)?;
            lx.expect(Tok::Comma)?;
            let rhs = parse_operand(lx, &ty)?;
            Ok(InstOp::FCmp { pred, ty, lhs, rhs })
        }
        "select" => {
            lx.next();
            let cond_ty = parse_type(lx)?; // i1 (vector conds unsupported)
            if cond_ty != Type::i1() {
                return lx.err("only scalar i1 select conditions are supported");
            }
            let cond = parse_operand(lx, &cond_ty)?;
            lx.expect(Tok::Comma)?;
            let ty = parse_type(lx)?;
            let tval = parse_operand(lx, &ty)?;
            lx.expect(Tok::Comma)?;
            let ty2 = parse_type(lx)?;
            if ty2 != ty {
                return lx.err("select arm types differ");
            }
            let fval = parse_operand(lx, &ty)?;
            Ok(InstOp::Select {
                cond,
                ty,
                tval,
                fval,
            })
        }
        "freeze" => {
            lx.next();
            let ty = parse_type(lx)?;
            let val = parse_operand(lx, &ty)?;
            Ok(InstOp::Freeze { ty, val })
        }
        "phi" => {
            lx.next();
            let ty = parse_type(lx)?;
            let mut incoming = Vec::new();
            loop {
                lx.expect(Tok::LBracket)?;
                let v = parse_operand(lx, &ty)?;
                lx.expect(Tok::Comma)?;
                let b = lx.local()?;
                lx.expect(Tok::RBracket)?;
                incoming.push((v, b));
                if !lx.accept(&Tok::Comma) {
                    break;
                }
            }
            Ok(InstOp::Phi { ty, incoming })
        }
        "call" | "tail" | "musttail" | "notail" => {
            if mnemonic != "call" {
                lx.next(); // tail marker
                lx.expect_ident("call")?;
            } else {
                lx.next();
            }
            let _fmf = parse_fmf(lx);
            let ty = parse_type(lx)?;
            let callee = lx.global()?;
            lx.expect(Tok::LParen)?;
            let mut args = Vec::new();
            if !lx.accept(&Tok::RParen) {
                loop {
                    let t = parse_type(lx)?;
                    let attrs = skip_param_attrs(lx);
                    let v = parse_operand(lx, &t)?;
                    args.push((t, v, attrs));
                    if lx.accept(&Tok::RParen) {
                        break;
                    }
                    lx.expect(Tok::Comma)?;
                }
            }
            let mut dummy = FnAttrs::default();
            parse_fn_suffix_attrs(lx, &mut dummy);
            Ok(InstOp::Call { ty, callee, args })
        }
        "alloca" => {
            lx.next();
            let elem_ty = parse_type(lx)?;
            let mut count = Operand::int(64, 1);
            let mut align = 0;
            while lx.accept(&Tok::Comma) {
                if lx.accept_ident("align") {
                    align = lx.int()? as u64;
                } else {
                    let cty = parse_type(lx)?;
                    count = parse_operand(lx, &cty)?;
                }
            }
            Ok(InstOp::Alloca {
                elem_ty,
                count,
                align,
            })
        }
        "load" => {
            lx.next();
            if lx.accept_ident("volatile") {
                return lx.err("volatile accesses are unsupported");
            }
            if lx.accept_ident("atomic") {
                return lx.err("atomic accesses are unsupported");
            }
            let ty = parse_type(lx)?;
            lx.expect(Tok::Comma)?;
            let pty = parse_type(lx)?;
            if pty != Type::Ptr {
                return lx.err("load pointer operand must have type ptr");
            }
            let ptr = parse_operand(lx, &Type::Ptr)?;
            let align = parse_align_suffix(lx)?;
            Ok(InstOp::Load { ty, ptr, align })
        }
        "store" => {
            lx.next();
            if lx.accept_ident("volatile") {
                return lx.err("volatile accesses are unsupported");
            }
            if lx.accept_ident("atomic") {
                return lx.err("atomic accesses are unsupported");
            }
            let ty = parse_type(lx)?;
            let val = parse_operand(lx, &ty)?;
            lx.expect(Tok::Comma)?;
            let pty = parse_type(lx)?;
            if pty != Type::Ptr {
                return lx.err("store pointer operand must have type ptr");
            }
            let ptr = parse_operand(lx, &Type::Ptr)?;
            let align = parse_align_suffix(lx)?;
            Ok(InstOp::Store {
                ty,
                val,
                ptr,
                align,
            })
        }
        "getelementptr" => {
            lx.next();
            let inbounds = lx.accept_ident("inbounds");
            let _ = lx.accept_ident("nuw");
            let _ = lx.accept_ident("nusw");
            let elem_ty = parse_type(lx)?;
            lx.expect(Tok::Comma)?;
            let pty = parse_type(lx)?;
            if pty != Type::Ptr {
                return lx.err("gep base must have type ptr");
            }
            let ptr = parse_operand(lx, &Type::Ptr)?;
            let mut indices = Vec::new();
            while lx.accept(&Tok::Comma) {
                let ity = parse_type(lx)?;
                let iv = parse_operand(lx, &ity)?;
                indices.push((ity, iv));
            }
            Ok(InstOp::Gep {
                inbounds,
                elem_ty,
                ptr,
                indices,
            })
        }
        "extractelement" => {
            lx.next();
            let vec_ty = parse_type(lx)?;
            let vec = parse_operand(lx, &vec_ty)?;
            lx.expect(Tok::Comma)?;
            let ity = parse_type(lx)?;
            let idx = parse_operand(lx, &ity)?;
            Ok(InstOp::ExtractElement { vec_ty, vec, idx })
        }
        "insertelement" => {
            lx.next();
            let vec_ty = parse_type(lx)?;
            let vec = parse_operand(lx, &vec_ty)?;
            lx.expect(Tok::Comma)?;
            let ety = parse_type(lx)?;
            let elem = parse_operand(lx, &ety)?;
            lx.expect(Tok::Comma)?;
            let ity = parse_type(lx)?;
            let idx = parse_operand(lx, &ity)?;
            Ok(InstOp::InsertElement {
                vec_ty,
                vec,
                elem,
                idx,
            })
        }
        "shufflevector" => {
            lx.next();
            let vec_ty = parse_type(lx)?;
            let v1 = parse_operand(lx, &vec_ty)?;
            lx.expect(Tok::Comma)?;
            let vec_ty2 = parse_type(lx)?;
            if vec_ty2 != vec_ty {
                return lx.err("shufflevector input types differ");
            }
            let v2 = parse_operand(lx, &vec_ty)?;
            lx.expect(Tok::Comma)?;
            let mask_ty = parse_type(lx)?;
            let mask_const = parse_constant(lx, &mask_ty)?;
            let mut mask = Vec::new();
            match &mask_const {
                Constant::Aggregate(_, elems) => {
                    for e in elems {
                        match e {
                            // Mask elements beyond u32 saturate to an
                            // always-out-of-bounds lane (poison at encode)
                            // rather than wrapping into a valid index.
                            Constant::Int(v) => {
                                mask.push(Some(u32::try_from(v.to_u64()).unwrap_or(u32::MAX)))
                            }
                            Constant::Undef(_) | Constant::Poison(_) => mask.push(None),
                            other => return lx.err(format!("bad shuffle mask element {other}")),
                        }
                    }
                }
                Constant::ZeroInit(t) => {
                    for _ in 0..t.elem_count() {
                        mask.push(Some(0));
                    }
                }
                other => return lx.err(format!("bad shuffle mask {other}")),
            }
            Ok(InstOp::ShuffleVector {
                vec_ty,
                v1,
                v2,
                mask,
            })
        }
        "extractvalue" => {
            lx.next();
            let agg_ty = parse_type(lx)?;
            let agg = parse_operand(lx, &agg_ty)?;
            let mut indices = Vec::new();
            while lx.accept(&Tok::Comma) {
                let i = lx.int()?;
                // `extractvalue {i8} %x, -1` must be a parse error, not
                // index 4294967295 after wrapping.
                let i = u32::try_from(i).map_err(|_| ParseError {
                    message: format!("bad aggregate index `{i}`"),
                    line: lx.line(),
                })?;
                indices.push(i);
            }
            check_index_path(lx, &agg_ty, &indices)?;
            Ok(InstOp::ExtractValue {
                agg_ty,
                agg,
                indices,
            })
        }
        "insertvalue" => {
            lx.next();
            let agg_ty = parse_type(lx)?;
            let agg = parse_operand(lx, &agg_ty)?;
            lx.expect(Tok::Comma)?;
            let elem_ty = parse_type(lx)?;
            let elem = parse_operand(lx, &elem_ty)?;
            let mut indices = Vec::new();
            while lx.accept(&Tok::Comma) {
                let i = lx.int()?;
                // `extractvalue {i8} %x, -1` must be a parse error, not
                // index 4294967295 after wrapping.
                let i = u32::try_from(i).map_err(|_| ParseError {
                    message: format!("bad aggregate index `{i}`"),
                    line: lx.line(),
                })?;
                indices.push(i);
            }
            check_index_path(lx, &agg_ty, &indices)?;
            Ok(InstOp::InsertValue {
                agg_ty,
                agg,
                elem_ty,
                elem,
                indices,
            })
        }
        "ret" => {
            lx.next();
            let ty = parse_type(lx)?;
            if ty == Type::Void {
                Ok(InstOp::Ret { val: None })
            } else {
                let v = parse_operand(lx, &ty)?;
                Ok(InstOp::Ret { val: Some((ty, v)) })
            }
        }
        "br" => {
            lx.next();
            if lx.accept_ident("label") {
                let dest = lx.local()?;
                return Ok(InstOp::Br { dest });
            }
            let cty = parse_type(lx)?;
            if cty != Type::i1() {
                return lx.err("conditional branch condition must be i1");
            }
            let cond = parse_operand(lx, &cty)?;
            lx.expect(Tok::Comma)?;
            lx.expect_ident("label")?;
            let then_dest = lx.local()?;
            lx.expect(Tok::Comma)?;
            lx.expect_ident("label")?;
            let else_dest = lx.local()?;
            Ok(InstOp::CondBr {
                cond,
                then_dest,
                else_dest,
            })
        }
        "switch" => {
            lx.next();
            let ty = parse_type(lx)?;
            let val = parse_operand(lx, &ty)?;
            lx.expect(Tok::Comma)?;
            lx.expect_ident("label")?;
            let default = lx.local()?;
            lx.expect(Tok::LBracket)?;
            let mut cases = Vec::new();
            while !lx.accept(&Tok::RBracket) {
                let cty = parse_type(lx)?;
                let c = match parse_constant(lx, &cty)? {
                    Constant::Int(v) => v,
                    other => return lx.err(format!("switch case must be integer, got {other}")),
                };
                lx.expect(Tok::Comma)?;
                lx.expect_ident("label")?;
                let l = lx.local()?;
                cases.push((c, l));
            }
            Ok(InstOp::Switch {
                ty,
                val,
                default,
                cases,
            })
        }
        "unreachable" => {
            lx.next();
            Ok(InstOp::Unreachable)
        }
        other => lx.err(format!("unsupported instruction `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_figure_1() {
        let src = r#"
define i32 @fn(i32 %a, i32 %b) {
entry:
  %t = add i32 %a, %a
  %c = icmp eq i32 %t, 0
  br i1 %c, label %then, label %else

then:
  %q = shl i32 %a, 2
  ret i32 %q

else:
  %r = and i32 %b, 1
  ret i32 %r
}
"#;
        let m = parse_module(src).unwrap();
        let f = &m.functions[0];
        assert_eq!(f.name, "fn");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.blocks.len(), 3);
        assert_eq!(f.blocks[0].name, "entry");
        assert_eq!(f.blocks[1].name, "then");
        assert!(matches!(f.blocks[0].insts[2].op, InstOp::CondBr { .. }));
    }

    #[test]
    fn parses_flags_and_constants() {
        let f = parse_function(
            "define i8 @f(i8 %x) {\n  %a = add nsw nuw i8 %x, -1\n  %b = udiv exact i8 %a, 2\n  ret i8 %b\n}",
        )
        .unwrap();
        match &f.blocks[0].insts[0].op {
            InstOp::Bin { flags, rhs, .. } => {
                assert!(flags.nsw && flags.nuw);
                assert_eq!(rhs.as_const().unwrap().as_int().to_i64(), -1);
            }
            _ => panic!(),
        }
        match &f.blocks[0].insts[1].op {
            InstOp::Bin { flags, .. } => assert!(flags.exact),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_memory_ops() {
        let f = parse_function(
            r#"define i32 @f(ptr %p, i64 %i) {
  %q = getelementptr inbounds i32, ptr %p, i64 %i
  %v = load i32, ptr %q, align 4
  store i32 %v, ptr %p, align 4
  %s = alloca i32, align 4
  ret i32 %v
}"#,
        )
        .unwrap();
        assert!(matches!(
            f.blocks[0].insts[0].op,
            InstOp::Gep { inbounds: true, .. }
        ));
        assert!(matches!(
            f.blocks[0].insts[1].op,
            InstOp::Load { align: 4, .. }
        ));
        assert!(matches!(f.blocks[0].insts[2].op, InstOp::Store { .. }));
        assert!(matches!(f.blocks[0].insts[3].op, InstOp::Alloca { .. }));
    }

    #[test]
    fn parses_vectors_and_shuffle() {
        let f = parse_function(
            r#"define <4 x i8> @f(<4 x i8> %v, <4 x i8> %w) {
  %s = shufflevector <4 x i8> %v, <4 x i8> %w, <4 x i32> <i32 3, i32 2, i32 undef, i32 2>
  %e = extractelement <4 x i8> %s, i64 0
  %i = insertelement <4 x i8> %s, i8 %e, i64 1
  ret <4 x i8> %i
}"#,
        )
        .unwrap();
        match &f.blocks[0].insts[0].op {
            InstOp::ShuffleVector { mask, .. } => {
                assert_eq!(mask, &vec![Some(3), Some(2), None, Some(2)]);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_phi_switch_select_freeze() {
        let f = parse_function(
            r#"define i32 @f(i32 %x) {
entry:
  switch i32 %x, label %d [ i32 1, label %a i32 2, label %b ]
a:
  br label %d
b:
  br label %d
d:
  %p = phi i32 [ 0, %entry ], [ 1, %a ], [ 2, %b ]
  %c = icmp eq i32 %p, 1
  %s = select i1 %c, i32 %p, i32 %x
  %fr = freeze i32 %s
  ret i32 %fr
}"#,
        )
        .unwrap();
        assert_eq!(f.blocks.len(), 4);
        match &f.blocks[3].insts[0].op {
            InstOp::Phi { incoming, .. } => assert_eq!(incoming.len(), 3),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_undef_poison_and_calls() {
        let m = parse_module(
            r#"declare i32 @g(i32) willreturn
define i32 @f() mustprogress {
  %x = call i32 @g(i32 undef)
  %y = add i32 %x, poison
  ret i32 %y
}"#,
        )
        .unwrap();
        assert_eq!(m.declares.len(), 1);
        assert!(m.declares[0].attrs.willreturn);
        assert!(m.functions[0].attrs.mustprogress);
        match &m.functions[0].blocks[0].insts[1].op {
            InstOp::Bin { rhs, .. } => {
                assert!(rhs.as_const().unwrap().contains_poison());
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_globals() {
        let m =
            parse_module("@g = global i32 42, align 4\n@c = constant [2 x i8] zeroinitializer\n")
                .unwrap();
        assert_eq!(m.globals.len(), 2);
        assert!(m.globals[1].is_const);
        assert_eq!(m.globals[0].align, 4);
    }

    #[test]
    fn parses_float_literals() {
        let f = parse_function(
            "define float @f(float %x) {\n  %a = fadd nsz float %x, 1.5\n  %b = fmul float %a, 0x3FF0000000000000\n  ret float %b\n}",
        )
        .unwrap();
        match &f.blocks[0].insts[0].op {
            InstOp::FBin { fmf, rhs, .. } => {
                assert!(fmf.nsz);
                match rhs.as_const().unwrap() {
                    Constant::Float(_, bits) => {
                        assert_eq!(bits.to_u64(), (1.5f32).to_bits() as u64)
                    }
                    _ => panic!(),
                }
            }
            _ => panic!(),
        }
    }

    #[test]
    fn error_reports_line() {
        let err =
            parse_module("define i32 @f() {\n  %x = bogus i32 1\n  ret i32 %x\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("bogus"));
    }

    #[test]
    fn unsupported_volatile_is_an_error() {
        let err = parse_module(
            "define i32 @f(ptr %p) {\n  %x = load volatile i32, ptr %p\n  ret i32 %x\n}",
        )
        .unwrap_err();
        assert!(err.message.contains("volatile"));
    }

    /// Hostile type shapes from the mutation fuzzer: every one must be a
    /// parse error, never a silent truncation or a panic downstream.
    #[test]
    fn hostile_type_shapes_are_errors() {
        for (src, msg) in [
            // zero / negative / u32-wrapping vector lane counts
            (
                "define <0 x i8> @f() {\n  ret <0 x i8> zeroinitializer\n}",
                "lane",
            ),
            (
                "define <-3 x i8> @f() {\n  ret <-3 x i8> zeroinitializer\n}",
                "lane",
            ),
            (
                "define <4294967297 x i8> @f() {\n  ret <4294967297 x i8> zeroinitializer\n}",
                "lane",
            ),
            // absurd integer widths (LLVM caps at 2^23)
            ("define i999999999 @f() {\n  ret i999999999 0\n}", "width"),
            (
                "define i99999999999999999999 @f() {\n  ret i99999999999999999999 0\n}",
                "integer",
            ),
            // negative array length
            ("define void @f([-1 x i8] %a) {\n  ret void\n}", "array"),
            // negative aggregate index must not wrap to 4294967295
            (
                "define i8 @f({i8, i8} %s) {\n  %x = extractvalue {i8, i8} %s, -1\n  ret i8 %x\n}",
                "index",
            ),
        ] {
            let err = parse_module(src).unwrap_err();
            assert!(
                err.message.contains(msg),
                "`{src}` gave `{}`, expected a message mentioning `{msg}`",
                err.message
            );
        }
        // In-range shapes still parse.
        assert!(parse_module("define <4 x i8> @f(<4 x i8> %v) {\n  ret <4 x i8> %v\n}").is_ok());
        assert!(parse_module("define void @f([0 x i8] %a) {\n  ret void\n}").is_ok());
    }

    #[test]
    fn round_trip_print_parse() {
        let src = r#"define i32 @fn(i32 %a, i32 %b) {
entry:
  %t = add nsw i32 %a, %b
  %c = icmp slt i32 %t, 10
  br i1 %c, label %then, label %else

then:
  ret i32 %t

else:
  %u = mul i32 %t, 3
  ret i32 %u
}"#;
        let f1 = parse_function(src).unwrap();
        let printed = f1.to_string();
        let f2 = parse_function(&printed).unwrap();
        assert_eq!(f1, f2, "print→parse must be stable:\n{printed}");
    }
}

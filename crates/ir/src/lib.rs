//! An LLVM-style typed SSA intermediate representation.
//!
//! This crate is the IR substrate of Alive2-rs: the data structures, parser,
//! printer, and analyses that the paper's system obtains from LLVM itself
//! (minus the analyses Alive2 deliberately re-implements, §8.1 — dominators
//! and loop nesting, which live here too and are used instead of trusting
//! the optimizer's own).
//!
//! - [`types`] / [`constant`] / [`instruction`] / [`function`] / [`module`]:
//!   the IR proper, including `undef`, `poison`, and `freeze` (paper §2);
//! - [`parser`] / printing via `Display`: LLVM assembly syntax (opaque
//!   pointers);
//! - [`cfg`](mod@cfg) / [`dominators`] / [`loops`]: control-flow analyses, with
//!   Tarjan–Havlak loop forests (§7);
//! - [`verify`]: SSA well-formedness checking;
//! - [`builder`]: programmatic construction;
//! - [`intrinsics`] / [`libfuncs`]: the §3.8 knowledge base of recognized
//!   intrinsics and library functions.
//!
//! # Examples
//!
//! ```
//! use alive2_ir::parser::parse_function;
//! use alive2_ir::verify::verify_function;
//!
//! let f = parse_function(r#"
//! define i32 @fn(i32 %a) {
//! entry:
//!   %t = add i32 %a, %a
//!   ret i32 %t
//! }
//! "#).unwrap();
//! assert!(verify_function(&f).is_empty());
//! ```

pub mod builder;
pub mod cfg;
pub mod constant;
pub mod dominators;
pub mod function;
pub mod instruction;
pub mod intrinsics;
pub mod libfuncs;
pub mod loops;
pub mod module;
pub mod parser;
pub mod types;
pub mod verify;

pub use constant::Constant;
pub use function::{Block, Function, Param};
pub use instruction::{InstOp, Instruction, Operand};
pub use module::Module;
pub use types::Type;

//! Dominator tree via the Cooper–Harvey–Kennedy iterative algorithm.
//!
//! The paper notes (§8.1) that Alive2 computes dominators itself rather
//! than trusting LLVM's analyses — we do the same relative to our IR.

use crate::cfg::Cfg;

/// Immediate-dominator table for a CFG.
#[derive(Clone, Debug)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; entry's idom is itself.
    /// Unreachable blocks have `usize::MAX`.
    idom: Vec<usize>,
    /// Reverse-postorder position per block (used for intersection).
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators for a CFG (entry = block 0).
    pub fn new(cfg: &Cfg) -> Dominators {
        let n = cfg.len();
        let rpo = cfg.reverse_postorder();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, &b) in rpo.iter().enumerate() {
            rpo_index[b] = i;
        }
        let mut idom = vec![usize::MAX; n];
        if n == 0 {
            return Dominators { idom, rpo_index };
        }
        idom[0] = 0;
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom = usize::MAX;
                for &p in &cfg.preds[b] {
                    if idom[p] == usize::MAX {
                        continue;
                    }
                    new_idom = if new_idom == usize::MAX {
                        p
                    } else {
                        Self::intersect(&idom, &rpo_index, p, new_idom)
                    };
                }
                if new_idom != usize::MAX && idom[b] != new_idom {
                    idom[b] = new_idom;
                    changed = true;
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    fn intersect(idom: &[usize], rpo_index: &[usize], mut a: usize, mut b: usize) -> usize {
        while a != b {
            while rpo_index[a] > rpo_index[b] {
                a = idom[a];
            }
            while rpo_index[b] > rpo_index[a] {
                b = idom[b];
            }
        }
        a
    }

    /// The immediate dominator of `b` (entry maps to itself), or `None`
    /// for unreachable blocks.
    pub fn idom(&self, b: usize) -> Option<usize> {
        match self.idom.get(b) {
            Some(&i) if i != usize::MAX => Some(i),
            _ => None,
        }
    }

    /// True if `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: usize, b: usize) -> bool {
        if self.idom.get(a).copied().unwrap_or(usize::MAX) == usize::MAX
            || self.idom.get(b).copied().unwrap_or(usize::MAX) == usize::MAX
        {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            let next = self.idom[cur];
            if next == cur {
                return false; // reached entry
            }
            cur = next;
        }
    }

    /// True if `a` strictly dominates `b`.
    pub fn strictly_dominates(&self, a: usize, b: usize) -> bool {
        a != b && self.dominates(a, b)
    }

    /// True if `b` is reachable from the entry.
    pub fn is_reachable(&self, b: usize) -> bool {
        self.idom.get(b).copied().unwrap_or(usize::MAX) != usize::MAX
    }

    /// The RPO index of a block (for deterministic orderings).
    pub fn rpo_index(&self, b: usize) -> usize {
        self.rpo_index[b]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    #[test]
    fn diamond_dominance() {
        let f = parse_function(
            r#"define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  br label %exit
b:
  br label %exit
exit:
  ret i32 0
}"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        // entry dominates all
        for b in 0..4 {
            assert!(dom.dominates(0, b));
        }
        // a and b do not dominate exit
        assert!(!dom.dominates(1, 3));
        assert!(!dom.dominates(2, 3));
        assert_eq!(dom.idom(3), Some(0));
        assert!(dom.strictly_dominates(0, 3));
        assert!(!dom.strictly_dominates(3, 3));
    }

    #[test]
    fn loop_dominance() {
        let f = parse_function(
            r#"define void @f(i1 %c) {
entry:
  br label %head
head:
  br i1 %c, label %body, label %exit
body:
  br label %head
exit:
  ret void
}"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert!(dom.dominates(1, 2)); // head dominates body
        assert!(dom.dominates(1, 3)); // head dominates exit
        assert!(!dom.dominates(2, 3));
        assert_eq!(dom.idom(2), Some(1));
    }

    #[test]
    fn unreachable_blocks_are_isolated() {
        let f = parse_function(
            r#"define void @f() {
entry:
  ret void
dead:
  ret void
}"#,
        )
        .unwrap();
        let cfg = Cfg::new(&f);
        let dom = Dominators::new(&cfg);
        assert!(!dom.is_reachable(1));
        assert!(!dom.dominates(0, 1));
        assert!(!dom.dominates(1, 0));
    }
}

//! IR well-formedness checks (SSA, CFG, φ-node consistency).
//!
//! Alive2-rs does not trust its inputs: the validator verifies both sides
//! of each function pair before encoding them.

use crate::cfg::Cfg;
use crate::dominators::Dominators;
use crate::function::Function;
use crate::instruction::InstOp;
use std::collections::{HashMap, HashSet};

/// A well-formedness violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(errors: &mut Vec<VerifyError>, msg: String) {
    errors.push(VerifyError { message: msg });
}

/// Verifies a function, returning every violation found.
pub fn verify_function(f: &Function) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    if f.blocks.is_empty() {
        err(&mut errors, format!("@{}: function has no blocks", f.name));
        return errors;
    }

    // Unique block names.
    let mut labels = HashSet::new();
    for b in &f.blocks {
        if !labels.insert(b.name.as_str()) {
            err(
                &mut errors,
                format!("@{}: duplicate label %{}", f.name, b.name),
            );
        }
    }

    // Blocks end with exactly one terminator.
    for b in &f.blocks {
        match b.insts.last() {
            None => err(&mut errors, format!("@{}: empty block %{}", f.name, b.name)),
            Some(t) if !t.op.is_terminator() => err(
                &mut errors,
                format!(
                    "@{}: block %{} does not end in a terminator",
                    f.name, b.name
                ),
            ),
            _ => {}
        }
        for inst in b.insts.iter().rev().skip(1) {
            if inst.op.is_terminator() {
                err(
                    &mut errors,
                    format!(
                        "@{}: terminator in the middle of block %{}: {inst}",
                        f.name, b.name
                    ),
                );
            }
        }
        // φ nodes only at the head.
        let mut non_phi_seen = false;
        for inst in &b.insts {
            let is_phi = matches!(inst.op, InstOp::Phi { .. });
            if is_phi && non_phi_seen {
                err(
                    &mut errors,
                    format!("@{}: φ after non-φ in block %{}", f.name, b.name),
                );
            }
            if !is_phi {
                non_phi_seen = true;
            }
        }
    }

    // Branch targets exist.
    for b in &f.blocks {
        if let Some(t) = b.insts.last() {
            for l in t.op.successor_labels() {
                if f.block_index(l).is_none() {
                    err(
                        &mut errors,
                        format!("@{}: branch to unknown label %{l} in %{}", f.name, b.name),
                    );
                }
            }
        }
    }

    // Single assignment; defs collected with their block.
    let mut def_block: HashMap<&str, usize> = HashMap::new();
    for p in &f.params {
        if def_block.insert(&p.name, usize::MAX).is_some() {
            err(
                &mut errors,
                format!("@{}: duplicate parameter %{}", f.name, p.name),
            );
        }
    }
    for (bi, b) in f.blocks.iter().enumerate() {
        for inst in &b.insts {
            if let Some(r) = &inst.result {
                if inst.op.result_type().is_none() {
                    err(
                        &mut errors,
                        format!("@{}: %{r} assigned from a void-producing op", f.name),
                    );
                }
                if def_block.insert(r, bi).is_some() {
                    err(
                        &mut errors,
                        format!("@{}: multiple definitions of %{r}", f.name),
                    );
                }
            }
        }
    }

    let cfg = Cfg::new(f);
    let dom = Dominators::new(&cfg);

    // φ nodes: one incoming entry per CFG predecessor.
    for (bi, b) in f.blocks.iter().enumerate() {
        let preds: HashSet<&str> = cfg.preds[bi]
            .iter()
            .map(|&p| f.blocks[p].name.as_str())
            .collect();
        for inst in b.phis() {
            if let InstOp::Phi { incoming, .. } = &inst.op {
                let inc: HashSet<&str> = incoming.iter().map(|(_, l)| l.as_str()).collect();
                if inc.len() != incoming.len() {
                    err(
                        &mut errors,
                        format!(
                            "@{}: φ in %{} has duplicate incoming labels",
                            f.name, b.name
                        ),
                    );
                }
                for l in &preds {
                    if !inc.contains(l) {
                        err(
                            &mut errors,
                            format!(
                                "@{}: φ in %{} missing entry for predecessor %{l}",
                                f.name, b.name
                            ),
                        );
                    }
                }
                for l in inc {
                    if !preds.contains(l) && f.block_index(l).is_some() {
                        err(
                            &mut errors,
                            format!(
                                "@{}: φ in %{} has entry for non-predecessor %{l}",
                                f.name, b.name
                            ),
                        );
                    }
                }
            }
        }
    }

    // Uses refer to defined registers; defs dominate uses (reachable code
    // only). φ uses are checked at the incoming block's exit.
    for (bi, b) in f.blocks.iter().enumerate() {
        if !dom.is_reachable(bi) {
            continue;
        }
        let mut defined_here: HashSet<&str> = HashSet::new();
        for inst in &b.insts {
            let check_use = |reg: &str,
                             use_block: usize,
                             defined_here: &HashSet<&str>,
                             errors: &mut Vec<VerifyError>| {
                match def_block.get(reg) {
                    None => err(
                        errors,
                        format!("@{}: use of undefined register %{reg}", f.name),
                    ),
                    Some(&db) => {
                        if db == usize::MAX {
                            // parameter: always fine
                        } else if db == use_block {
                            if !defined_here.contains(reg) {
                                err(
                                    errors,
                                    format!(
                                        "@{}: %{reg} used before its definition in %{}",
                                        f.name, f.blocks[use_block].name
                                    ),
                                );
                            }
                        } else if dom.is_reachable(db) && !dom.strictly_dominates(db, use_block) {
                            err(
                                errors,
                                format!(
                                    "@{}: definition of %{reg} does not dominate its use in %{}",
                                    f.name, f.blocks[use_block].name
                                ),
                            );
                        }
                    }
                }
            };
            if let InstOp::Phi { incoming, .. } = &inst.op {
                for (v, from) in incoming {
                    if let Some(reg) = v.as_reg() {
                        if let (Some(fb), Some(&db)) = (f.block_index(from), def_block.get(reg)) {
                            if db != usize::MAX
                                && dom.is_reachable(fb)
                                && dom.is_reachable(db)
                                && !dom.dominates(db, fb)
                            {
                                err(
                                    &mut errors,
                                    format!(
                                        "@{}: φ operand %{reg} does not dominate edge from %{from}",
                                        f.name
                                    ),
                                );
                            }
                        } else if def_block.get(reg).is_none() {
                            err(
                                &mut errors,
                                format!("@{}: use of undefined register %{reg}", f.name),
                            );
                        }
                    }
                }
            } else {
                for op in inst.op.operands() {
                    if let Some(reg) = op.as_reg() {
                        check_use(reg, bi, &defined_here, &mut errors);
                    }
                }
            }
            if let Some(r) = &inst.result {
                defined_here.insert(r);
            }
        }
    }

    // Return type agreement.
    for b in &f.blocks {
        if let Some(inst) = b.insts.last() {
            if let InstOp::Ret { val } = &inst.op {
                match (val, &f.ret_ty) {
                    (None, t) if *t != crate::types::Type::Void => err(
                        &mut errors,
                        format!("@{}: ret void in function returning {t}", f.name),
                    ),
                    (Some((t, _)), rt) if t != rt => err(
                        &mut errors,
                        format!("@{}: ret {t} in function returning {rt}", f.name),
                    ),
                    _ => {}
                }
            }
        }
    }

    errors
}

/// Verifies every function in a module.
pub fn verify_module(m: &crate::module::Module) -> Vec<VerifyError> {
    m.functions.iter().flat_map(verify_function).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_function;

    fn check(src: &str) -> Vec<VerifyError> {
        verify_function(&parse_function(src).unwrap())
    }

    #[test]
    fn valid_function_passes() {
        let errs = check(
            r#"define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %p = add i32 %x, 1
  br label %join
b:
  br label %join
join:
  %r = phi i32 [ %p, %a ], [ %x, %b ]
  ret i32 %r
}"#,
        );
        assert!(errs.is_empty(), "{errs:?}");
    }

    #[test]
    fn missing_terminator() {
        let errs = check("define void @f() {\nentry:\n  %x = add i32 1, 2\n}");
        assert!(errs.iter().any(|e| e.message.contains("terminator")));
    }

    #[test]
    fn use_before_def_in_block() {
        let errs = check(
            "define i32 @f() {\nentry:\n  %a = add i32 %b, 1\n  %b = add i32 1, 1\n  ret i32 %a\n}",
        );
        assert!(errs
            .iter()
            .any(|e| e.message.contains("used before its definition")));
    }

    #[test]
    fn undefined_register() {
        let errs = check("define i32 @f() {\nentry:\n  ret i32 %nope\n}");
        assert!(errs
            .iter()
            .any(|e| e.message.contains("undefined register")));
    }

    #[test]
    fn def_must_dominate_use() {
        let errs = check(
            r#"define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %x = add i32 1, 2
  br label %join
b:
  br label %join
join:
  ret i32 %x
}"#,
        );
        assert!(errs.iter().any(|e| e.message.contains("dominate")));
    }

    #[test]
    fn phi_missing_predecessor_entry() {
        let errs = check(
            r#"define i32 @f(i1 %c) {
entry:
  br i1 %c, label %a, label %join
a:
  br label %join
join:
  %r = phi i32 [ 1, %a ]
  ret i32 %r
}"#,
        );
        assert!(errs
            .iter()
            .any(|e| e.message.contains("missing entry for predecessor")));
    }

    #[test]
    fn duplicate_definition() {
        let errs = check(
            "define i32 @f() {\nentry:\n  %x = add i32 1, 1\n  %x = add i32 2, 2\n  ret i32 %x\n}",
        );
        assert!(errs
            .iter()
            .any(|e| e.message.contains("multiple definitions")));
    }

    #[test]
    fn bad_branch_target() {
        let errs = check("define void @f() {\nentry:\n  br label %nowhere\n}");
        assert!(errs.iter().any(|e| e.message.contains("unknown label")));
    }

    #[test]
    fn ret_type_mismatch() {
        let errs = check("define i32 @f() {\nentry:\n  ret i64 0\n}");
        assert!(errs.iter().any(|e| e.message.contains("ret i64")));
    }
}

//! Loop-invariant code motion, with the seedable load-hoisting bug
//! ([`BugId::LicmHoistLoad`]): hoisting a load out of a conditionally
//! executed loop body introduces UB on paths where the loop body never
//! runs — one of the paper's "loop optimizations incorrectly handling
//! memory accesses".

use crate::bugs::{BugId, BugSet};
use crate::pass::Pass;
use alive2_ir::cfg::Cfg;
use alive2_ir::function::Function;
use alive2_ir::instruction::{BinOpKind, InstOp, Instruction};
use alive2_ir::loops::LoopForest;
use std::collections::HashSet;

/// The LICM pass.
#[derive(Debug, Default)]
pub struct Licm;

/// Speculatable instructions: safe to execute even if the original would
/// not have run. Division/remainder (UB) and loads (UB) are excluded.
fn speculatable(op: &InstOp) -> bool {
    match op {
        InstOp::Bin { op, .. } => !op.is_div_rem(),
        InstOp::ICmp { .. }
        | InstOp::FCmp { .. }
        | InstOp::FBin { .. }
        | InstOp::FNeg { .. }
        | InstOp::Select { .. }
        | InstOp::Cast { .. }
        | InstOp::Gep { .. }
        | InstOp::ExtractElement { .. }
        | InstOp::ExtractValue { .. } => true,
        _ => false,
    }
}

impl Pass for Licm {
    fn name(&self) -> &'static str {
        "licm"
    }

    fn run(&self, f: &mut Function, bugs: &BugSet) -> bool {
        let cfg = Cfg::new(f);
        let forest = LoopForest::new(&cfg);
        if !forest.has_loops() || forest.has_irreducible() {
            return false;
        }
        let mut changed = false;
        for l in &forest.loops {
            let loop_names: HashSet<String> =
                l.blocks.iter().map(|&b| f.blocks[b].name.clone()).collect();
            // Preheader: unique predecessor of the header outside the loop,
            // ending in an unconditional branch.
            let header_name = f.blocks[l.header].name.clone();
            let preds: Vec<usize> = cfg.preds[l.header]
                .iter()
                .copied()
                .filter(|p| !l.blocks.contains(p))
                .collect();
            if preds.len() != 1 {
                continue;
            }
            let ph = preds[0];
            if !matches!(
                f.blocks[ph].insts.last().map(|t| &t.op),
                Some(InstOp::Br { .. })
            ) {
                continue;
            }
            let ph_name = f.blocks[ph].name.clone();
            let _ = header_name;
            // Defs inside the loop (an operand defined in-loop blocks
            // hoisting).
            let mut loop_defs: HashSet<String> = HashSet::new();
            for b in &f.blocks {
                if loop_names.contains(&b.name) {
                    for i in &b.insts {
                        if let Some(r) = &i.result {
                            loop_defs.insert(r.clone());
                        }
                    }
                }
            }
            // Collect hoistable instructions.
            let mut hoisted: Vec<Instruction> = Vec::new();
            for b in &mut f.blocks {
                if !loop_names.contains(&b.name) {
                    continue;
                }
                let mut keep = Vec::new();
                for inst in b.insts.drain(..) {
                    let invariant_ops = inst
                        .op
                        .operands()
                        .iter()
                        .all(|o| o.as_reg().map_or(true, |r| !loop_defs.contains(r)));
                    let can_hoist = inst.result.is_some()
                        && invariant_ops
                        && (speculatable(&inst.op)
                            || (bugs.has(BugId::LicmHoistLoad)
                                && matches!(inst.op, InstOp::Load { .. })));
                    // Avoid hoisting `shl` twice-speculated poison subtleties
                    // is unnecessary: speculating poison-producing ops is
                    // fine (poison only flows if used).
                    let _ = BinOpKind::Add;
                    if can_hoist {
                        hoisted.push(inst);
                    } else {
                        keep.push(inst);
                    }
                }
                b.insts = keep;
            }
            if hoisted.is_empty() {
                continue;
            }
            // A hoisted def must not itself depend on a later hoisted def;
            // preserve original order, they were collected in order.
            for r in hoisted.iter().filter_map(|i| i.result.clone()) {
                loop_defs.remove(&r);
            }
            let phb = f.block_mut(&ph_name).expect("preheader exists");
            let at = phb.insts.len() - 1;
            for (k, inst) in hoisted.into_iter().enumerate() {
                phb.insts.insert(at + k, inst);
            }
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    const LOOP: &str = r#"define i32 @f(i32 %n, i32 %a, i32 %b, ptr %p) {
entry:
  br label %head
head:
  %i = phi i32 [ 0, %entry ], [ %i1, %body ]
  %c = icmp ult i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %inv = mul i32 %a, %b
  %v = load i32, ptr %p
  %i1 = add i32 %i, 1
  br label %head
exit:
  ret i32 0
}"#;

    #[test]
    fn hoists_invariant_arithmetic_but_not_loads() {
        let mut f = parse_function(LOOP).unwrap();
        assert!(Licm.run(&mut f, &BugSet::none()));
        assert!(verify_function(&f).is_empty(), "{f}");
        let entry = &f.blocks[0];
        let s: Vec<String> = entry.insts.iter().map(|i| i.to_string()).collect();
        assert!(s.iter().any(|i| i.contains("mul i32 %a, %b")), "{s:?}");
        // The load stays in the body (hoisting it would add UB on the
        // zero-iteration path).
        assert!(f
            .block("body")
            .unwrap()
            .insts
            .iter()
            .any(|i| matches!(i.op, InstOp::Load { .. })));
    }

    #[test]
    fn buggy_variant_hoists_the_load() {
        let mut f = parse_function(LOOP).unwrap();
        assert!(Licm.run(&mut f, &BugSet::only(BugId::LicmHoistLoad)));
        assert!(verify_function(&f).is_empty(), "{f}");
        let entry = &f.blocks[0];
        assert!(
            entry
                .insts
                .iter()
                .any(|i| matches!(i.op, InstOp::Load { .. })),
            "{f}"
        );
    }

    #[test]
    fn no_loops_no_change() {
        let mut f = parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 1\n  ret i32 %a\n}",
        )
        .unwrap();
        assert!(!Licm.run(&mut f, &BugSet::none()));
    }
}

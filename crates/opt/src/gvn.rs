//! Global value numbering: replaces computations that repeat an earlier,
//! dominating computation. Also deduplicates calls to `readnone` functions
//! with identical arguments — the optimization §6's call relation exists
//! to justify.

use crate::bugs::BugSet;
use crate::pass::Pass;
use alive2_ir::cfg::Cfg;
use alive2_ir::dominators::Dominators;
use alive2_ir::function::Function;
use alive2_ir::instruction::{InstOp, Operand};
use std::collections::HashMap;

/// The GVN pass.
#[derive(Debug, Default)]
pub struct Gvn;

/// A hashable key for value-numberable operations. `None` means the
/// instruction must not be numbered (memory, control, freeze — every
/// freeze is a distinct non-deterministic choice).
fn key(f: &Function, op: &InstOp) -> Option<String> {
    let numberable = matches!(
        op,
        InstOp::Bin { .. }
            | InstOp::ICmp { .. }
            | InstOp::FCmp { .. }
            | InstOp::FBin { .. }
            | InstOp::FNeg { .. }
            | InstOp::Select { .. }
            | InstOp::Cast { .. }
            | InstOp::Gep { .. }
            | InstOp::ExtractElement { .. }
            | InstOp::ExtractValue { .. }
    );
    if !numberable {
        // Calls to recognized readnone+willreturn library functions are
        // numberable too (§6's call dedup justification).
        if let InstOp::Call { callee, .. } = op {
            let known = alive2_ir::libfuncs::libfunc(callee)
                .map(|l| l.mem == alive2_ir::libfuncs::MemEffect::None && l.willreturn)
                .unwrap_or(false);
            if !known {
                return None;
            }
        } else {
            return None;
        }
    }
    let _ = f;
    // The Debug form of the op includes operator, flags, types and
    // operands — exactly the numbering key.
    Some(format!("{op:?}"))
}

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&self, f: &mut Function, _bugs: &BugSet) -> bool {
        let cfg = Cfg::new(f);
        let dom = Dominators::new(&cfg);
        let rpo = cfg.reverse_postorder();
        // key -> (defining reg, defining block)
        let mut table: HashMap<String, (String, usize)> = HashMap::new();
        let mut replaces: Vec<(String, String)> = Vec::new();
        for &bi in &rpo {
            // In-block position matters only within the same block, where
            // earlier entries are always safe to reuse.
            for inst in &f.blocks[bi].insts {
                let Some(r) = &inst.result else { continue };
                let Some(k) = key(f, &inst.op) else { continue };
                match table.get(&k) {
                    Some((prev, pb)) if *pb == bi || dom.strictly_dominates(*pb, bi) => {
                        replaces.push((r.clone(), prev.clone()));
                    }
                    _ => {
                        table.insert(k, (r.clone(), bi));
                    }
                }
            }
        }
        let changed = !replaces.is_empty();
        for (dead, keep) in replaces {
            f.replace_uses(&dead, &Operand::Reg(keep));
            for b in &mut f.blocks {
                b.insts
                    .retain(|i| i.result.as_deref() != Some(dead.as_str()));
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    #[test]
    fn dedups_repeated_arithmetic() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x, i32 %y) {
entry:
  %a = add i32 %x, %y
  %b = add i32 %x, %y
  %r = mul i32 %a, %b
  ret i32 %r
}"#,
        )
        .unwrap();
        assert!(Gvn.run(&mut f, &BugSet::none()));
        assert!(f.to_string().contains("mul i32 %a, %a"), "{f}");
        assert!(verify_function(&f).is_empty());
    }

    #[test]
    fn respects_dominance() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x, i1 %c) {
entry:
  br i1 %c, label %a, label %b
a:
  %p = add i32 %x, 1
  ret i32 %p
b:
  %q = add i32 %x, 1
  ret i32 %q
}"#,
        )
        .unwrap();
        // Neither block dominates the other: no change allowed.
        assert!(!Gvn.run(&mut f, &BugSet::none()));
    }

    #[test]
    fn does_not_number_freeze() {
        let mut f = parse_function(
            r#"define i8 @f(i8 %x) {
entry:
  %a = freeze i8 %x
  %b = freeze i8 %x
  %r = sub i8 %a, %b
  ret i8 %r
}"#,
        )
        .unwrap();
        assert!(!Gvn.run(&mut f, &BugSet::none()));
    }

    #[test]
    fn dedups_readnone_library_calls() {
        let mut f = parse_function(
            r#"declare double @sqrt(double)
define double @f(double %x) {
entry:
  %a = call double @sqrt(double %x)
  %b = call double @sqrt(double %x)
  %r = fadd double %a, %b
  ret double %r
}"#,
        )
        .unwrap();
        assert!(Gvn.run(&mut f, &BugSet::none()));
        assert!(f.to_string().contains("fadd double %a, %a"), "{f}");
    }
}

//! A mini LLVM-style optimizer: the compiler under test for the Alive2-rs
//! evaluation.
//!
//! The pipeline ([`pass::PassManager::default_pipeline`]) contains real
//! implementations of the pass families the paper's experiments exercise —
//! instsimplify, instcombine, SimplifyCFG, GVN, mem2reg, LICM, DSE, DCE —
//! plus faithful re-creations of historic miscompilation bugs ([`bugs`])
//! that can be switched on per run, so the benchmark harness can regenerate
//! the §8.2 bug taxonomy and the §8.4/§8.5 experiments.

pub mod bugs;
pub mod dce;
pub mod dse;
pub mod fold;
pub mod gvn;
pub mod instcombine;
pub mod instsimplify;
pub mod licm;
pub mod mem2reg;
pub mod pass;
pub mod simplifycfg;

pub use bugs::{BugCategory, BugId, BugSet};
pub use pass::{Pass, PassManager};

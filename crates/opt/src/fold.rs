//! Constant folding shared by the optimizer passes.

use alive2_ir::constant::Constant;
use alive2_ir::instruction::{BinOpKind, ICmpPred, WrapFlags};
use alive2_smt::bv::BitVec;

/// Folds an integer binary operation on constants. Returns `None` when the
/// result cannot be represented as a constant the optimizer may use (e.g.
/// division by zero — immediate UB must not be folded away).
pub fn fold_bin(op: BinOpKind, flags: WrapFlags, a: &BitVec, b: &BitVec) -> Option<Constant> {
    let w = a.width();
    let poison = || Some(Constant::Poison(alive2_ir::types::Type::Int(w)));
    match op {
        BinOpKind::Add => {
            if flags.nsw && a.sadd_overflows(b) || flags.nuw && a.uadd_overflows(b) {
                return poison();
            }
            Some(Constant::Int(a.add(b)))
        }
        BinOpKind::Sub => {
            if flags.nsw && a.ssub_overflows(b) || flags.nuw && a.usub_overflows(b) {
                return poison();
            }
            Some(Constant::Int(a.sub(b)))
        }
        BinOpKind::Mul => {
            if flags.nsw && a.smul_overflows(b) || flags.nuw && a.umul_overflows(b) {
                return poison();
            }
            Some(Constant::Int(a.mul(b)))
        }
        BinOpKind::UDiv => {
            if b.is_zero() {
                return None; // immediate UB: leave in place
            }
            if flags.exact && !a.urem(b).is_zero() {
                return poison();
            }
            Some(Constant::Int(a.udiv(b)))
        }
        BinOpKind::SDiv => {
            if b.is_zero() || (*a == BitVec::min_signed(w) && b.is_all_ones()) {
                return None;
            }
            if flags.exact && !a.srem(b).is_zero() {
                return poison();
            }
            Some(Constant::Int(a.sdiv(b)))
        }
        BinOpKind::URem => {
            if b.is_zero() {
                return None;
            }
            Some(Constant::Int(a.urem(b)))
        }
        BinOpKind::SRem => {
            if b.is_zero() || (*a == BitVec::min_signed(w) && b.is_all_ones()) {
                return None;
            }
            Some(Constant::Int(a.srem(b)))
        }
        BinOpKind::Shl => {
            if b.to_u64() >= w as u64 {
                return poison();
            }
            Some(Constant::Int(a.shl(b)))
        }
        BinOpKind::LShr => {
            if b.to_u64() >= w as u64 {
                return poison();
            }
            if flags.exact && !a.shl(b).lshr(b).is_zero() && a.lshr(b).shl(b) != *a {
                return poison();
            }
            Some(Constant::Int(a.lshr(b)))
        }
        BinOpKind::AShr => {
            if b.to_u64() >= w as u64 {
                return poison();
            }
            Some(Constant::Int(a.ashr(b)))
        }
        BinOpKind::And => Some(Constant::Int(a.and(b))),
        BinOpKind::Or => Some(Constant::Int(a.or(b))),
        BinOpKind::Xor => Some(Constant::Int(a.xor(b))),
    }
}

/// Folds an integer comparison on constants.
pub fn fold_icmp(pred: ICmpPred, a: &BitVec, b: &BitVec) -> Constant {
    Constant::bool(pred.eval(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_arithmetic() {
        let a = BitVec::from_u64(8, 200);
        let b = BitVec::from_u64(8, 100);
        assert_eq!(
            fold_bin(BinOpKind::Add, WrapFlags::none(), &a, &b).unwrap(),
            Constant::int(8, 44)
        );
        // nuw overflow folds to poison.
        assert!(matches!(
            fold_bin(BinOpKind::Add, WrapFlags::nuw(), &a, &b).unwrap(),
            Constant::Poison(_)
        ));
    }

    #[test]
    fn does_not_fold_immediate_ub() {
        let a = BitVec::from_u64(8, 1);
        let z = BitVec::zero(8);
        assert!(fold_bin(BinOpKind::UDiv, WrapFlags::none(), &a, &z).is_none());
        assert!(fold_bin(BinOpKind::SRem, WrapFlags::none(), &a, &z).is_none());
        let m = BitVec::min_signed(8);
        let n1 = BitVec::all_ones(8);
        assert!(fold_bin(BinOpKind::SDiv, WrapFlags::none(), &m, &n1).is_none());
    }

    #[test]
    fn shift_amount_of_width_is_poison() {
        let a = BitVec::from_u64(8, 1);
        let big = BitVec::from_u64(8, 8);
        assert!(matches!(
            fold_bin(BinOpKind::Shl, WrapFlags::none(), &a, &big).unwrap(),
            Constant::Poison(_)
        ));
    }

    #[test]
    fn folds_icmp() {
        let a = BitVec::from_i64(8, -1);
        let b = BitVec::from_u64(8, 1);
        assert_eq!(fold_icmp(ICmpPred::Slt, &a, &b), Constant::bool(true));
        assert_eq!(fold_icmp(ICmpPred::Ult, &a, &b), Constant::bool(false));
    }
}

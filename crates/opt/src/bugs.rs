//! Re-creations of the miscompilation bugs the paper found (§8.2, §8.4).
//!
//! Each [`BugId`] switches one deliberately incorrect rewrite into the
//! optimizer. The taxonomy mirrors the paper's classification of the 121
//! refinement violations found in LLVM's unit tests; the benchmark harness
//! (`table_bugs`) regenerates the category table by enabling each bug and
//! counting what the validator reports.

use std::collections::HashSet;
use std::fmt;

/// The §8.2 violation categories.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BugCategory {
    /// Optimizations incorrect when undef is an input or constant (43).
    UndefInput,
    /// Introducing a branch on undef/poison, which is UB (18).
    BranchOnUndef,
    /// Mishandled vector operations (9).
    Vector,
    /// UB-related select miscompilations (5).
    Select,
    /// Incorrect arithmetic (4).
    Arithmetic,
    /// Loop optimizations mishandling memory accesses (4).
    LoopMemory,
    /// Incorrect handling of fast-math flags (3).
    FastMath,
    /// Ambiguous int↔float bitcast semantics (3).
    Bitcast,
    /// Other memory-related miscompilations (17).
    Memory,
}

impl BugCategory {
    /// The number of violations the paper attributes to this category.
    pub fn paper_count(self) -> u32 {
        match self {
            BugCategory::UndefInput => 43,
            BugCategory::BranchOnUndef => 18,
            BugCategory::Vector => 9,
            BugCategory::Select => 5,
            BugCategory::Arithmetic => 4,
            BugCategory::LoopMemory => 4,
            BugCategory::FastMath => 3,
            BugCategory::Bitcast => 3,
            BugCategory::Memory => 17,
        }
    }

    /// All categories, in the paper's order.
    pub fn all() -> [BugCategory; 9] {
        [
            BugCategory::UndefInput,
            BugCategory::BranchOnUndef,
            BugCategory::Vector,
            BugCategory::Select,
            BugCategory::Arithmetic,
            BugCategory::LoopMemory,
            BugCategory::FastMath,
            BugCategory::Bitcast,
            BugCategory::Memory,
        ]
    }
}

impl fmt::Display for BugCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BugCategory::UndefInput => "incorrect when undef is an input",
            BugCategory::BranchOnUndef => "introduces a branch on undef/poison",
            BugCategory::Vector => "mishandled vector operations",
            BugCategory::Select => "UB-related select miscompilation",
            BugCategory::Arithmetic => "incorrect arithmetic",
            BugCategory::LoopMemory => "loop optimization mishandling memory",
            BugCategory::FastMath => "incorrect fast-math flag handling",
            BugCategory::Bitcast => "ambiguous int/float bitcast semantics",
            BugCategory::Memory => "memory-related miscompilation",
        };
        f.write_str(s)
    }
}

/// One seedable bug.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BugId {
    /// InstCombine rewrites `mul %x, 2` into `add %x, %x`, which *adds*
    /// behaviors when `%x` is undef (the two uses may observe different
    /// values). Category: [`BugCategory::UndefInput`].
    MulToAddSelf,
    /// SimplifyCFG turns `select` into a conditional branch, introducing
    /// UB when the condition is undef/poison (§8.3 "Branches and UB").
    SelectToBranch,
    /// InstCombine rewrites `select %c, %y, false` into `and %c, %y` —
    /// losing select's short-circuiting of poison (§8.4's bulk finding).
    SelectToLogic,
    /// InstCombine folds `udiv (shl %x, 1), 2` to `%x` without requiring
    /// the shift to be lossless. Category: [`BugCategory::Arithmetic`].
    ShlDivFold,
    /// LICM hoists a load out of a conditionally-executed loop body,
    /// introducing UB on the zero-iteration path.
    LicmHoistLoad,
    /// InstCombine folds `fadd %x, +0.0` to `%x`, wrong for `%x == -0.0`
    /// (the paper's selected bug #2 family).
    FAddZero,
    /// Dead-store elimination treats a *narrower* later store as fully
    /// clobbering an earlier wider one.
    DseWrongSize,
    /// The SLP-style vectorizer keeps `nsw` when reassociating adds into
    /// vector lanes (the paper's selected bug #1).
    VectorizeKeepNsw,
    /// Folding a shufflevector's undef mask lane to poison (the pre-fix
    /// semantics the paper corrected, §8.3 "Vectors and UB").
    ShuffleUndefMaskToPoison,
    /// Rematerializing (duplicating) a float→int bitcast, illegal under
    /// the non-deterministic-NaN semantics (§3.5).
    RematBitcast,
}

impl BugId {
    /// The paper category this bug belongs to.
    pub fn category(self) -> BugCategory {
        match self {
            BugId::MulToAddSelf => BugCategory::UndefInput,
            BugId::SelectToBranch => BugCategory::BranchOnUndef,
            BugId::SelectToLogic => BugCategory::Select,
            BugId::ShlDivFold => BugCategory::Arithmetic,
            BugId::LicmHoistLoad => BugCategory::LoopMemory,
            BugId::FAddZero => BugCategory::FastMath,
            BugId::DseWrongSize => BugCategory::Memory,
            BugId::VectorizeKeepNsw => BugCategory::Vector,
            BugId::ShuffleUndefMaskToPoison => BugCategory::Vector,
            BugId::RematBitcast => BugCategory::Bitcast,
        }
    }

    /// Every seedable bug.
    pub fn all() -> [BugId; 10] {
        [
            BugId::MulToAddSelf,
            BugId::SelectToBranch,
            BugId::SelectToLogic,
            BugId::ShlDivFold,
            BugId::LicmHoistLoad,
            BugId::FAddZero,
            BugId::DseWrongSize,
            BugId::VectorizeKeepNsw,
            BugId::ShuffleUndefMaskToPoison,
            BugId::RematBitcast,
        ]
    }
}

/// The set of bugs enabled for a pipeline run.
#[derive(Clone, Debug, Default)]
pub struct BugSet {
    enabled: HashSet<BugId>,
}

impl BugSet {
    /// No bugs: the correct optimizer.
    pub fn none() -> BugSet {
        BugSet::default()
    }

    /// Every seedable bug enabled.
    pub fn all() -> BugSet {
        BugSet {
            enabled: BugId::all().into_iter().collect(),
        }
    }

    /// A set with exactly one bug.
    pub fn only(bug: BugId) -> BugSet {
        let mut s = BugSet::none();
        s.enable(bug);
        s
    }

    /// Enables a bug.
    pub fn enable(&mut self, bug: BugId) -> &mut Self {
        self.enabled.insert(bug);
        self
    }

    /// True if the bug is enabled.
    pub fn has(&self, bug: BugId) -> bool {
        self.enabled.contains(&bug)
    }

    /// Number of enabled bugs.
    pub fn len(&self) -> usize {
        self.enabled.len()
    }

    /// True if no bug is enabled.
    pub fn is_empty(&self) -> bool {
        self.enabled.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_counts_match_the_paper() {
        let total: u32 = BugCategory::all().iter().map(|c| c.paper_count()).sum();
        // 43+18+9+5+4+4+3+3+17 = 106 violations attributed to compiler
        // bugs (the remaining 15 of 121 were Alive2's own, §8.2).
        assert_eq!(total, 106);
    }

    #[test]
    fn every_category_has_a_seeded_bug() {
        let covered: HashSet<BugCategory> = BugId::all().iter().map(|b| b.category()).collect();
        for c in BugCategory::all() {
            assert!(covered.contains(&c), "category {c} lacks a seeded bug");
        }
    }

    #[test]
    fn bugset_operations() {
        let mut s = BugSet::none();
        assert!(s.is_empty());
        s.enable(BugId::FAddZero);
        assert!(s.has(BugId::FAddZero));
        assert!(!s.has(BugId::MulToAddSelf));
        assert_eq!(s.len(), 1);
        assert_eq!(BugSet::all().len(), BugId::all().len());
        assert!(BugSet::only(BugId::ShlDivFold).has(BugId::ShlDivFold));
    }
}

//! InstSimplify: peephole folds that replace an instruction with an
//! existing value or constant (no new instructions, like LLVM's
//! `-instsimplify`).

use crate::bugs::BugSet;
use crate::fold::{fold_bin, fold_icmp};
use crate::pass::Pass;
use alive2_ir::constant::Constant;
use alive2_ir::function::Function;
use alive2_ir::instruction::{BinOpKind, ICmpPred, InstOp, Operand};
use alive2_smt::bv::BitVec;

/// The instruction simplifier.
#[derive(Debug, Default)]
pub struct InstSimplify;

fn as_int(op: &Operand) -> Option<&BitVec> {
    match op.as_const()? {
        Constant::Int(v) => Some(v),
        _ => None,
    }
}

/// Computes a replacement value for one instruction, if any.
fn simplify(op: &InstOp) -> Option<Operand> {
    match op {
        InstOp::Bin {
            op,
            flags,
            ty,
            lhs,
            rhs,
        } => {
            if ty.is_vector() {
                return None;
            }
            if let (Some(a), Some(b)) = (as_int(lhs), as_int(rhs)) {
                return fold_bin(*op, *flags, a, b).map(Operand::Const);
            }
            let w = ty.int_width();
            let rhs_val = as_int(rhs);
            let lhs_val = as_int(lhs);
            let zero = || Operand::int(w, 0);
            match op {
                BinOpKind::Add => {
                    // x + 0 = x (also 0 + x by canonicalized match below).
                    if rhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(lhs.clone());
                    }
                    if lhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(rhs.clone());
                    }
                }
                BinOpKind::Sub => {
                    if rhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(lhs.clone());
                    }
                    // x - x = 0 (sound: removes undef behaviors, which
                    // refinement permits).
                    if lhs == rhs && lhs.as_reg().is_some() {
                        return Some(zero());
                    }
                }
                BinOpKind::Mul => {
                    if rhs_val.map_or(false, |v| v.is_one()) {
                        return Some(lhs.clone());
                    }
                    if lhs_val.map_or(false, |v| v.is_one()) {
                        return Some(rhs.clone());
                    }
                    if rhs_val.map_or(false, |v| v.is_zero())
                        || lhs_val.map_or(false, |v| v.is_zero())
                    {
                        return Some(zero());
                    }
                }
                BinOpKind::And => {
                    if lhs == rhs && lhs.as_reg().is_some() {
                        return Some(lhs.clone());
                    }
                    if rhs_val.map_or(false, |v| v.is_zero())
                        || lhs_val.map_or(false, |v| v.is_zero())
                    {
                        return Some(zero());
                    }
                    if rhs_val.map_or(false, |v| v.is_all_ones()) {
                        return Some(lhs.clone());
                    }
                    if lhs_val.map_or(false, |v| v.is_all_ones()) {
                        return Some(rhs.clone());
                    }
                }
                BinOpKind::Or => {
                    if lhs == rhs && lhs.as_reg().is_some() {
                        return Some(lhs.clone());
                    }
                    if rhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(lhs.clone());
                    }
                    if lhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(rhs.clone());
                    }
                    if rhs_val.map_or(false, |v| v.is_all_ones())
                        || lhs_val.map_or(false, |v| v.is_all_ones())
                    {
                        return Some(Operand::Const(Constant::Int(BitVec::all_ones(w))));
                    }
                }
                BinOpKind::Xor => {
                    if lhs == rhs && lhs.as_reg().is_some() {
                        return Some(zero());
                    }
                    if rhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(lhs.clone());
                    }
                    if lhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(rhs.clone());
                    }
                }
                BinOpKind::UDiv | BinOpKind::SDiv => {
                    if rhs_val.map_or(false, |v| v.is_one()) {
                        return Some(lhs.clone());
                    }
                }
                BinOpKind::URem => {
                    if rhs_val.map_or(false, |v| v.is_one()) {
                        return Some(zero());
                    }
                }
                BinOpKind::Shl | BinOpKind::LShr | BinOpKind::AShr => {
                    if rhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(lhs.clone());
                    }
                    if lhs_val.map_or(false, |v| v.is_zero()) {
                        return Some(zero());
                    }
                }
                _ => {}
            }
            None
        }
        InstOp::ICmp { pred, ty, lhs, rhs } => {
            if ty.is_vector() {
                return None;
            }
            if let (Some(a), Some(b)) = (as_int(lhs), as_int(rhs)) {
                return Some(Operand::Const(fold_icmp(*pred, a, b)));
            }
            // x <pred> x folds for every predicate... but only when x is a
            // register observed once — two observations of an undef value
            // may differ, yet folding eq(x, x) to true *removes* behaviors,
            // which refinement allows.
            if lhs == rhs && lhs.as_reg().is_some() {
                let r = match pred {
                    ICmpPred::Eq
                    | ICmpPred::Uge
                    | ICmpPred::Ule
                    | ICmpPred::Sge
                    | ICmpPred::Sle => true,
                    ICmpPred::Ne
                    | ICmpPred::Ugt
                    | ICmpPred::Ult
                    | ICmpPred::Sgt
                    | ICmpPred::Slt => false,
                };
                return Some(Operand::Const(Constant::bool(r)));
            }
            None
        }
        InstOp::Select {
            cond, tval, fval, ..
        } => {
            if let Some(Constant::Int(c)) = cond.as_const() {
                return Some(if c.is_one() {
                    tval.clone()
                } else {
                    fval.clone()
                });
            }
            if tval == fval {
                return Some(tval.clone());
            }
            None
        }
        InstOp::Freeze { val, .. } => {
            // freeze of a fully-defined constant is that constant.
            match val.as_const() {
                Some(Constant::Int(_))
                | Some(Constant::Float(..))
                | Some(Constant::Null)
                | Some(Constant::Global(_)) => Some(val.clone()),
                _ => None,
            }
        }
        _ => None,
    }
}

impl Pass for InstSimplify {
    fn name(&self) -> &'static str {
        "instsimplify"
    }

    fn run(&self, f: &mut Function, _bugs: &BugSet) -> bool {
        let mut changed = false;
        loop {
            let mut round = false;
            let mut replace: Option<(String, Operand)> = None;
            'scan: for b in &f.blocks {
                for inst in &b.insts {
                    if let Some(r) = &inst.result {
                        if let Some(new) = simplify(&inst.op) {
                            replace = Some((r.clone(), new));
                            break 'scan;
                        }
                    }
                }
            }
            if let Some((reg, new)) = replace {
                f.replace_uses(&reg, &new);
                for b in &mut f.blocks {
                    b.insts
                        .retain(|i| i.result.as_deref() != Some(reg.as_str()));
                }
                round = true;
                changed = true;
            }
            if !round {
                break;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    fn run(src: &str) -> Function {
        let mut f = parse_function(src).unwrap();
        InstSimplify.run(&mut f, &BugSet::none());
        assert!(verify_function(&f).is_empty(), "{f}");
        f
    }

    #[test]
    fn folds_identities() {
        let f = run(r#"define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 0
  %b = mul i32 %a, 1
  %c = or i32 %b, 0
  ret i32 %c
}"#);
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert!(f.to_string().contains("ret i32 %x"));
    }

    #[test]
    fn folds_constants() {
        let f = run("define i32 @f() {\nentry:\n  %a = add i32 20, 22\n  ret i32 %a\n}");
        assert!(f.to_string().contains("ret i32 42"));
    }

    #[test]
    fn folds_same_operand_compares() {
        let f = run("define i1 @f(i32 %x) {\nentry:\n  %c = icmp ult i32 %x, %x\n  ret i1 %c\n}");
        assert!(f.to_string().contains("ret i1 false"));
    }

    #[test]
    fn preserves_division_by_zero() {
        // udiv 1, 0 is immediate UB and must not be folded away.
        let f = run("define i32 @f() {\nentry:\n  %a = udiv i32 1, 0\n  ret i32 %a\n}");
        assert!(f.to_string().contains("udiv i32 1, 0"));
    }

    #[test]
    fn select_folds() {
        let f = run(r#"define i32 @f(i32 %x, i32 %y, i1 %c) {
entry:
  %a = select i1 true, i32 %x, i32 %y
  %b = select i1 %c, i32 %a, i32 %a
  ret i32 %b
}"#);
        assert!(f.to_string().contains("ret i32 %x"));
    }
}

//! Dead-store elimination, with the seedable clobber-size bug
//! ([`BugId::DseWrongSize`]): treating a *narrower* later store as fully
//! clobbering an earlier wider one silently drops visible bytes — one of
//! the paper's memory-related miscompilation family.

use crate::bugs::{BugId, BugSet};
use crate::pass::Pass;
use alive2_ir::function::Function;
use alive2_ir::instruction::InstOp;

/// The DSE pass.
#[derive(Debug, Default)]
pub struct Dse;

impl Pass for Dse {
    fn name(&self) -> &'static str {
        "dse"
    }

    fn run(&self, f: &mut Function, bugs: &BugSet) -> bool {
        let buggy = bugs.has(BugId::DseWrongSize);
        let mut changed = false;
        for b in &mut f.blocks {
            let mut dead: Vec<usize> = Vec::new();
            for i in 0..b.insts.len() {
                let InstOp::Store { ty, ptr, .. } = &b.insts[i].op else {
                    continue;
                };
                let size = ty.byte_size();
                // Scan forward for a clobbering store to the same pointer
                // with no intervening read/call.
                for j in (i + 1)..b.insts.len() {
                    match &b.insts[j].op {
                        InstOp::Store {
                            ty: ty2, ptr: ptr2, ..
                        } if ptr2 == ptr => {
                            let covers = ty2.byte_size() >= size;
                            if covers || buggy {
                                dead.push(i);
                            }
                            break;
                        }
                        InstOp::Load { .. } | InstOp::Call { .. } | InstOp::Store { .. } => {
                            break; // may observe the stored bytes
                        }
                        _ => {}
                    }
                }
            }
            if !dead.is_empty() {
                changed = true;
                for (off, i) in dead.into_iter().enumerate() {
                    b.insts.remove(i - off);
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    #[test]
    fn removes_fully_clobbered_store() {
        let mut f = parse_function(
            r#"define void @f(ptr %p) {
entry:
  store i32 1, ptr %p
  store i32 2, ptr %p
  ret void
}"#,
        )
        .unwrap();
        assert!(Dse.run(&mut f, &BugSet::none()));
        assert!(verify_function(&f).is_empty());
        assert_eq!(
            f.blocks[0]
                .insts
                .iter()
                .filter(|i| matches!(i.op, InstOp::Store { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn keeps_partially_clobbered_store() {
        let mut f = parse_function(
            r#"define void @f(ptr %p) {
entry:
  store i32 1, ptr %p
  store i8 2, ptr %p
  ret void
}"#,
        )
        .unwrap();
        assert!(!Dse.run(&mut f, &BugSet::none()));
        // The buggy variant removes it anyway.
        let mut f2 = parse_function(
            r#"define void @f(ptr %p) {
entry:
  store i32 1, ptr %p
  store i8 2, ptr %p
  ret void
}"#,
        )
        .unwrap();
        assert!(Dse.run(&mut f2, &BugSet::only(BugId::DseWrongSize)));
    }

    #[test]
    fn intervening_load_blocks_elimination() {
        let mut f = parse_function(
            r#"define i32 @f(ptr %p) {
entry:
  store i32 1, ptr %p
  %v = load i32, ptr %p
  store i32 2, ptr %p
  ret i32 %v
}"#,
        )
        .unwrap();
        assert!(!Dse.run(&mut f, &BugSet::none()));
    }
}

//! InstCombine: peepholes that may create new instructions, with the
//! seedable historic bugs of §8.2/§8.4.

use crate::bugs::{BugId, BugSet};
use crate::pass::Pass;
use alive2_ir::constant::Constant;
use alive2_ir::function::Function;
use alive2_ir::instruction::{BinOpKind, FBinOpKind, ICmpPred, InstOp, Operand, WrapFlags};
use alive2_ir::types::{FloatKind, Type};
use alive2_smt::bv::BitVec;

/// The combiner.
#[derive(Debug, Default)]
pub struct InstCombine;

fn as_int(op: &Operand) -> Option<&BitVec> {
    match op.as_const()? {
        Constant::Int(v) => Some(v),
        _ => None,
    }
}

fn float_is_pos_zero(op: &Operand, k: FloatKind) -> bool {
    match op.as_const() {
        Some(Constant::Float(fk, bits)) => *fk == k && bits.is_zero(),
        _ => false,
    }
}

fn float_is_neg_zero(op: &Operand, k: FloatKind) -> bool {
    match op.as_const() {
        Some(Constant::Float(fk, bits)) => *fk == k && bits.count_ones() == 1 && bits.sign_bit(),
        _ => false,
    }
}

/// Result of trying to combine one instruction.
enum Combined {
    /// Nothing to do.
    No,
    /// The operation was rewritten in place.
    InPlace,
    /// The instruction should be deleted and its uses replaced.
    ReplaceWith(Operand),
}

/// Rewrites one instruction in place; returns what happened.
fn combine(inst_op: &mut InstOp, bugs: &BugSet) -> Combined {
    match inst_op {
        InstOp::Bin {
            op: BinOpKind::Mul,
            flags,
            ty,
            lhs,
            rhs,
        } if !ty.is_vector() => {
            let Some(c) = as_int(rhs) else {
                return Combined::No;
            };
            if bugs.has(BugId::MulToAddSelf) && c.to_u64() == 2 {
                // BUG: x*2 -> x+x adds behaviors when x is undef (the two
                // uses may observe different values).
                let x = lhs.clone();
                *inst_op = InstOp::Bin {
                    op: BinOpKind::Add,
                    flags: WrapFlags::none(),
                    ty: ty.clone(),
                    lhs: x.clone(),
                    rhs: x,
                };
                return Combined::InPlace;
            }
            if c.is_power_of_two() && !c.is_one() {
                // mul x, 2^k -> shl x, k (flags dropped: always sound).
                let k = c.trailing_zeros();
                let w = ty.int_width();
                *inst_op = InstOp::Bin {
                    op: BinOpKind::Shl,
                    flags: WrapFlags::none(),
                    ty: ty.clone(),
                    lhs: lhs.clone(),
                    rhs: Operand::int(w, k as u64),
                };
                return Combined::InPlace;
            }
            let _ = flags;
            Combined::No
        }
        InstOp::Select {
            cond,
            ty,
            tval,
            fval,
        } if *ty == Type::i1() && bugs.has(BugId::SelectToLogic) => {
            // BUG (§8.4): select %c, %y, false -> and %c, %y loses the
            // short-circuiting of poison in %y when %c is false.
            if fval.as_const() == Some(&Constant::bool(false)) {
                *inst_op = InstOp::Bin {
                    op: BinOpKind::And,
                    flags: WrapFlags::none(),
                    ty: Type::i1(),
                    lhs: cond.clone(),
                    rhs: tval.clone(),
                };
                return Combined::InPlace;
            }
            if tval.as_const() == Some(&Constant::bool(true)) {
                *inst_op = InstOp::Bin {
                    op: BinOpKind::Or,
                    flags: WrapFlags::none(),
                    ty: Type::i1(),
                    lhs: cond.clone(),
                    rhs: fval.clone(),
                };
                return Combined::InPlace;
            }
            Combined::No
        }
        InstOp::ICmp {
            pred: pred @ ICmpPred::Ult,
            ty,
            lhs,
            rhs,
        } if !ty.is_vector() => {
            // icmp ult x, 1 -> icmp eq x, 0
            if as_int(rhs).map_or(false, |v| v.is_one()) {
                let w = ty.int_width();
                *pred = ICmpPred::Eq;
                *rhs = Operand::int(w, 0);
                let _ = lhs;
                return Combined::InPlace;
            }
            Combined::No
        }
        InstOp::FBin {
            op: FBinOpKind::FAdd,
            ty,
            lhs,
            rhs,
            ..
        } => {
            let Type::Float(k) = ty.scalar_type() else {
                return Combined::No;
            };
            if float_is_neg_zero(rhs, *k) {
                // fadd x, -0.0 -> x is correct for all x.
                return Combined::ReplaceWith(lhs.clone());
            }
            if bugs.has(BugId::FAddZero) && float_is_pos_zero(rhs, *k) {
                // BUG: fadd x, +0.0 -> x is wrong for x = -0.0 (the sum is
                // +0.0). This is the paper's selected bug #2 family.
                return Combined::ReplaceWith(lhs.clone());
            }
            Combined::No
        }
        _ => Combined::No,
    }
}

/// `udiv (shl x, 1), 2 -> x` needs two-instruction matching.
fn combine_div_of_shl(f: &mut Function, bugs: &BugSet) -> bool {
    if !bugs.has(BugId::ShlDivFold) {
        return false;
    }
    let mut edit: Option<(String, Operand)> = None;
    'scan: for b in &f.blocks {
        for inst in &b.insts {
            if let InstOp::Bin {
                op: BinOpKind::UDiv,
                ty,
                lhs,
                rhs,
                ..
            } = &inst.op
            {
                if ty.is_vector() || as_int(rhs).map_or(true, |v| v.to_u64() != 2) {
                    continue;
                }
                let Some(shl_reg) = lhs.as_reg() else {
                    continue;
                };
                // find the defining shl x, 1
                for b2 in &f.blocks {
                    for inst2 in &b2.insts {
                        if inst2.result.as_deref() == Some(shl_reg) {
                            if let InstOp::Bin {
                                op: BinOpKind::Shl,
                                lhs: x,
                                rhs: amt,
                                ..
                            } = &inst2.op
                            {
                                if as_int(amt).map_or(false, |v| v.is_one()) {
                                    // BUG: requires the shift to be lossless
                                    // (nuw); folding unconditionally is
                                    // wrong when x's top bit is set.
                                    edit = Some((inst.result.clone().unwrap(), x.clone()));
                                    break 'scan;
                                }
                            }
                        }
                    }
                }
            }
        }
    }
    if let Some((reg, new)) = edit {
        f.replace_uses(&reg, &new);
        for b in &mut f.blocks {
            b.insts
                .retain(|i| i.result.as_deref() != Some(reg.as_str()));
        }
        true
    } else {
        false
    }
}

/// Buggy rematerialization of float→int bitcasts (§3.5's NaN
/// non-determinism makes duplication illegal).
fn remat_bitcast(f: &mut Function, bugs: &BugSet) -> bool {
    if !bugs.has(BugId::RematBitcast) {
        return false;
    }
    // Find a float→int bitcast whose result is used at least twice; clone
    // the cast and point one use at the clone.
    let mut plan: Option<(usize, usize, String)> = None;
    for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if let (Some(r), InstOp::Cast { kind, from_ty, .. }) = (&inst.result, &inst.op) {
                if *kind == alive2_ir::instruction::CastKind::BitCast
                    && from_ty.is_float()
                    && f.count_uses(r) >= 2
                {
                    plan = Some((bi, ii, r.clone()));
                }
            }
        }
    }
    let Some((bi, ii, reg)) = plan else {
        return false;
    };
    let clone_reg = f.fresh_reg(&format!("{reg}.remat"));
    let mut clone = f.blocks[bi].insts[ii].clone();
    clone.result = Some(clone_reg.clone());
    // Replace the *last* use in the same block with the clone.
    let mut done = false;
    let insts = &mut f.blocks[bi].insts;
    for k in (ii + 1..insts.len()).rev() {
        if done {
            break;
        }
        insts[k].op.map_operands(|op| {
            if !done && op.as_reg() == Some(reg.as_str()) {
                *op = Operand::Reg(clone_reg.clone());
                done = true;
            }
        });
        if done {
            insts.insert(k, clone.clone());
        }
    }
    done
}

impl Pass for InstCombine {
    fn name(&self) -> &'static str {
        "instcombine"
    }

    fn run(&self, f: &mut Function, bugs: &BugSet) -> bool {
        let mut changed = false;
        let mut replacements: Vec<(String, Operand)> = Vec::new();
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                match combine(&mut inst.op, bugs) {
                    Combined::No => {}
                    Combined::InPlace => changed = true,
                    Combined::ReplaceWith(op) => {
                        if let Some(r) = &inst.result {
                            replacements.push((r.clone(), op));
                        }
                    }
                }
            }
        }
        for (reg, new) in replacements {
            f.replace_uses(&reg, &new);
            for b in &mut f.blocks {
                b.insts
                    .retain(|i| i.result.as_deref() != Some(reg.as_str()));
            }
            changed = true;
        }
        changed |= combine_div_of_shl(f, bugs);
        changed |= remat_bitcast(f, bugs);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    fn run(src: &str, bugs: &BugSet) -> Function {
        let mut f = parse_function(src).unwrap();
        InstCombine.run(&mut f, bugs);
        assert!(verify_function(&f).is_empty(), "{f}");
        f
    }

    #[test]
    fn mul_by_power_of_two_becomes_shift() {
        let f = run(
            "define i32 @f(i32 %x) {\nentry:\n  %r = mul i32 %x, 8\n  ret i32 %r\n}",
            &BugSet::none(),
        );
        assert!(f.to_string().contains("shl i32 %x, 3"), "{f}");
    }

    #[test]
    fn buggy_mul_to_add_self() {
        let f = run(
            "define i32 @f(i32 %x) {\nentry:\n  %r = mul i32 %x, 2\n  ret i32 %r\n}",
            &BugSet::only(BugId::MulToAddSelf),
        );
        assert!(f.to_string().contains("add i32 %x, %x"), "{f}");
    }

    #[test]
    fn buggy_select_to_logic() {
        let f = run(
            "define i1 @f(i1 %c, i1 %y) {\nentry:\n  %r = select i1 %c, i1 %y, i1 false\n  ret i1 %r\n}",
            &BugSet::only(BugId::SelectToLogic),
        );
        assert!(f.to_string().contains("and i1 %c, %y"), "{f}");
        // Without the bug the select stays.
        let f2 = run(
            "define i1 @f(i1 %c, i1 %y) {\nentry:\n  %r = select i1 %c, i1 %y, i1 false\n  ret i1 %r\n}",
            &BugSet::none(),
        );
        assert!(f2.to_string().contains("select"), "{f2}");
    }

    #[test]
    fn buggy_shl_div_fold() {
        let f = run(
            r#"define i8 @f(i8 %x) {
entry:
  %s = shl i8 %x, 1
  %r = udiv i8 %s, 2
  ret i8 %r
}"#,
            &BugSet::only(BugId::ShlDivFold),
        );
        assert!(f.to_string().contains("ret i8 %x"), "{f}");
    }

    #[test]
    fn buggy_remat_bitcast_duplicates_cast() {
        let f = run(
            r#"define i32 @f(float %x) {
entry:
  %i = bitcast float %x to i32
  %r = xor i32 %i, %i
  ret i32 %r
}"#,
            &BugSet::only(BugId::RematBitcast),
        );
        assert!(f.to_string().contains(".remat"), "{f}");
    }

    #[test]
    fn icmp_ult_one_becomes_eq_zero() {
        let f = run(
            "define i1 @f(i32 %x) {\nentry:\n  %c = icmp ult i32 %x, 1\n  ret i1 %c\n}",
            &BugSet::none(),
        );
        assert!(f.to_string().contains("icmp eq i32 %x, 0"), "{f}");
    }
}

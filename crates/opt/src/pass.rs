//! The pass framework and standard pipelines.

use crate::bugs::BugSet;
use alive2_ir::function::Function;

/// A function-level transformation pass.
pub trait Pass {
    /// The pass name (used in reports, mirroring `opt -passes=`).
    fn name(&self) -> &'static str;

    /// Runs the pass; returns true if the function changed.
    fn run(&self, f: &mut Function, bugs: &BugSet) -> bool;
}

/// A straight-line pass pipeline.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    /// Bugs seeded into this pipeline (§8.2 reproduction).
    pub bugs: BugSet,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.passes.iter().map(|p| p.name()).collect();
        write!(
            f,
            "PassManager {{ passes: {names:?}, bugs: {} }}",
            self.bugs.len()
        )
    }
}

impl PassManager {
    /// An empty pipeline.
    pub fn new(bugs: BugSet) -> PassManager {
        PassManager {
            passes: Vec::new(),
            bugs,
        }
    }

    /// Appends a pass.
    pub fn add(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// The passes in order.
    pub fn pass_names(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the full pipeline once over a function; returns the names of
    /// passes that changed it.
    pub fn run(&self, f: &mut Function) -> Vec<&'static str> {
        let mut changed = Vec::new();
        for p in &self.passes {
            let _sp = alive2_obs::span_labeled(alive2_obs::Phase::Opt, p.name());
            if p.run(f, &self.bugs) {
                changed.push(p.name());
            }
        }
        changed
    }

    /// Runs each pass, snapshotting the function before/after so a
    /// translation validator can check every step (the `opt -tv` plugin
    /// workflow, §8.1). Returns `(pass name, before, after)` triples for
    /// passes that changed the function.
    pub fn run_with_snapshots(&self, f: &mut Function) -> Vec<(&'static str, Function, Function)> {
        let mut out = Vec::new();
        for p in &self.passes {
            let _sp = alive2_obs::span_labeled(alive2_obs::Phase::Opt, p.name());
            let before = f.clone();
            if p.run(f, &self.bugs) && *f != before {
                out.push((p.name(), before, f.clone()));
            }
        }
        out
    }

    /// The default `-O2`-style pipeline used by the evaluation harness.
    pub fn default_pipeline(bugs: BugSet) -> PassManager {
        let mut pm = PassManager::new(bugs);
        pm.add(Box::new(crate::mem2reg::Mem2Reg));
        pm.add(Box::new(crate::instsimplify::InstSimplify));
        pm.add(Box::new(crate::instcombine::InstCombine));
        pm.add(Box::new(crate::simplifycfg::SimplifyCfg));
        pm.add(Box::new(crate::gvn::Gvn));
        pm.add(Box::new(crate::licm::Licm));
        pm.add(Box::new(crate::dse::Dse));
        pm.add(Box::new(crate::instsimplify::InstSimplify));
        pm.add(Box::new(crate::dce::Dce));
        pm
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    #[test]
    fn default_pipeline_runs_and_keeps_ir_valid() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x, i1 %c) {
entry:
  %p = alloca i32
  store i32 %x, ptr %p
  %v = load i32, ptr %p
  %a = add i32 %v, 0
  %b = mul i32 %a, 1
  %dead = xor i32 %b, 12345
  br i1 %c, label %t, label %e
t:
  ret i32 %b
e:
  ret i32 %b
}"#,
        )
        .unwrap();
        let pm = PassManager::default_pipeline(BugSet::none());
        let changed = pm.run(&mut f);
        assert!(!changed.is_empty());
        let errs = verify_function(&f);
        assert!(errs.is_empty(), "{errs:?}\n{f}");
        // The dead xor must be gone.
        assert!(!f.to_string().contains("12345"), "{f}");
    }

    #[test]
    fn snapshots_capture_changes() {
        let mut f = parse_function(
            "define i32 @f(i32 %x) {\nentry:\n  %a = add i32 %x, 0\n  ret i32 %a\n}",
        )
        .unwrap();
        let pm = PassManager::default_pipeline(BugSet::none());
        let snaps = pm.run_with_snapshots(&mut f);
        assert!(!snaps.is_empty());
        for (_, before, after) in &snaps {
            assert_ne!(before, after);
        }
    }
}

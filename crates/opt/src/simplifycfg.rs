//! CFG simplification: constant-branch folding and block merging, plus the
//! seedable select→branch bug (§8.3 "Branches and UB" — introducing a
//! branch on a possibly-undef value is UB the source never had).

use crate::bugs::{BugId, BugSet};
use crate::pass::Pass;
use alive2_ir::constant::Constant;
use alive2_ir::function::{Block, Function};
use alive2_ir::instruction::{InstOp, Instruction, Operand};

/// The pass.
#[derive(Debug, Default)]
pub struct SimplifyCfg;

/// Folds `br i1 <const>, %a, %b` into an unconditional branch, fixing φs
/// in the dead successor.
fn fold_constant_branches(f: &mut Function) -> bool {
    let mut changed = false;
    for bi in 0..f.blocks.len() {
        let Some(term) = f.blocks[bi].insts.last() else {
            continue;
        };
        let InstOp::CondBr {
            cond: Operand::Const(Constant::Int(c)),
            then_dest,
            else_dest,
        } = &term.op
        else {
            continue;
        };
        let (live, dead) = if c.is_one() {
            (then_dest.clone(), else_dest.clone())
        } else {
            (else_dest.clone(), then_dest.clone())
        };
        let from = f.blocks[bi].name.clone();
        *f.blocks[bi].insts.last_mut().unwrap() =
            Instruction::stmt(InstOp::Br { dest: live.clone() });
        // The dead edge disappears: remove φ entries for it (unless the
        // live edge also targets that block).
        if dead != live {
            if let Some(db) = f.block_mut(&dead) {
                for inst in &mut db.insts {
                    if let InstOp::Phi { incoming, .. } = &mut inst.op {
                        incoming.retain(|(_, l)| *l != from);
                    }
                }
            }
        }
        changed = true;
    }
    changed
}

/// Merges a block into its unique predecessor when the predecessor ends in
/// an unconditional branch to it and the block has no φs.
fn merge_blocks(f: &mut Function) -> bool {
    for bi in 0..f.blocks.len() {
        let name = f.blocks[bi].name.clone();
        if bi == 0 {
            continue;
        }
        // Unique predecessor with unconditional terminator?
        let preds: Vec<usize> = f
            .blocks
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.insts
                    .last()
                    .map(|t| t.op.successor_labels().contains(&name.as_str()))
                    .unwrap_or(false)
            })
            .map(|(i, _)| i)
            .collect();
        if preds.len() != 1 {
            continue;
        }
        let p = preds[0];
        if p == bi {
            continue;
        }
        let is_simple_br = matches!(
            f.blocks[p].insts.last().map(|t| &t.op),
            Some(InstOp::Br { .. })
        );
        if !is_simple_br || f.blocks[bi].phis().count() > 0 {
            continue;
        }
        // Merge: drop pred's terminator, append block's instructions.
        let moved: Vec<Instruction> = f.blocks[bi].insts.clone();
        let merged_name = f.blocks[p].name.clone();
        f.blocks[p].insts.pop();
        f.blocks[p].insts.extend(moved);
        // φs elsewhere referring to the merged block now come from pred.
        for b in &mut f.blocks {
            for inst in &mut b.insts {
                if let InstOp::Phi { incoming, .. } = &mut inst.op {
                    for (_, l) in incoming {
                        if *l == name {
                            *l = merged_name.clone();
                        }
                    }
                }
            }
        }
        f.blocks.remove(bi);
        return true;
    }
    false
}

/// BUG [`BugId::SelectToBranch`]: rewrites the first select into explicit
/// control flow, introducing a branch on a possibly-undef/poison value.
fn select_to_branch(f: &mut Function) -> bool {
    let mut found: Option<(usize, usize)> = None;
    'scan: for (bi, b) in f.blocks.iter().enumerate() {
        for (ii, inst) in b.insts.iter().enumerate() {
            if matches!(inst.op, InstOp::Select { .. }) && inst.result.is_some() {
                found = Some((bi, ii));
                break 'scan;
            }
        }
    }
    let Some((bi, ii)) = found else {
        return false;
    };
    let inst = f.blocks[bi].insts[ii].clone();
    let InstOp::Select {
        cond,
        ty,
        tval,
        fval,
    } = inst.op
    else {
        unreachable!();
    };
    let result = inst.result.unwrap();
    let orig_name = f.blocks[bi].name.clone();
    let then_l = f.fresh_label(&format!("{orig_name}.selt"));
    let else_l = f.fresh_label(&format!("{orig_name}.self"));
    let join_l = f.fresh_label(&format!("{orig_name}.seljoin"));
    // Split: head keeps insts[..ii] + condbr; join gets phi + rest.
    let rest: Vec<Instruction> = f.blocks[bi].insts.split_off(ii + 1);
    f.blocks[bi].insts.pop(); // remove the select
    f.blocks[bi].insts.push(Instruction::stmt(InstOp::CondBr {
        cond,
        then_dest: then_l.clone(),
        else_dest: else_l.clone(),
    }));
    let mut then_b = Block::new(then_l.clone());
    then_b.insts.push(Instruction::stmt(InstOp::Br {
        dest: join_l.clone(),
    }));
    let mut else_b = Block::new(else_l.clone());
    else_b.insts.push(Instruction::stmt(InstOp::Br {
        dest: join_l.clone(),
    }));
    let mut join_b = Block::new(join_l.clone());
    join_b.insts.push(Instruction::with_result(
        result,
        InstOp::Phi {
            ty,
            incoming: vec![(tval, then_l), (fval, else_l)],
        },
    ));
    join_b.insts.extend(rest);
    // φs in successors of the original block now see `join` as pred.
    let succs: Vec<String> = join_b
        .insts
        .last()
        .map(|t| {
            t.op.successor_labels()
                .iter()
                .map(|s| s.to_string())
                .collect()
        })
        .unwrap_or_default();
    for sname in succs {
        if let Some(sb) = f.block_mut(&sname) {
            for inst in &mut sb.insts {
                if let InstOp::Phi { incoming, .. } = &mut inst.op {
                    for (_, l) in incoming {
                        if *l == orig_name {
                            *l = join_l.clone();
                        }
                    }
                }
            }
        }
    }
    let at = f.blocks.iter().position(|b| b.name == orig_name).unwrap();
    f.blocks.insert(at + 1, then_b);
    f.blocks.insert(at + 2, else_b);
    f.blocks.insert(at + 3, join_b);
    true
}

impl Pass for SimplifyCfg {
    fn name(&self) -> &'static str {
        "simplifycfg"
    }

    fn run(&self, f: &mut Function, bugs: &BugSet) -> bool {
        let mut changed = false;
        changed |= fold_constant_branches(f);
        while merge_blocks(f) {
            changed = true;
        }
        if bugs.has(BugId::SelectToBranch) && select_to_branch(f) {
            changed = true;
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    #[test]
    fn folds_constant_branch_and_merges() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x) {
entry:
  br i1 true, label %a, label %b
a:
  %r = add i32 %x, 1
  ret i32 %r
b:
  ret i32 0
}"#,
        )
        .unwrap();
        assert!(SimplifyCfg.run(&mut f, &BugSet::none()));
        let errs = verify_function(&f);
        assert!(errs.is_empty(), "{errs:?}\n{f}");
        // entry and a merged; b still present (unreachable, DCE's job).
        assert!(f.to_string().contains("%r = add i32 %x, 1"));
        assert!(!f.to_string().contains("br i1 true"));
    }

    #[test]
    fn buggy_select_to_branch() {
        let mut f = parse_function(
            r#"define i32 @f(i1 %c, i32 %x, i32 %y) {
entry:
  %r = select i1 %c, i32 %x, i32 %y
  ret i32 %r
}"#,
        )
        .unwrap();
        assert!(SimplifyCfg.run(&mut f, &BugSet::only(BugId::SelectToBranch)));
        let errs = verify_function(&f);
        assert!(errs.is_empty(), "{errs:?}\n{f}");
        let s = f.to_string();
        assert!(s.contains("br i1 %c"), "{s}");
        assert!(s.contains("phi i32"), "{s}");
        assert!(!s.contains("select"), "{s}");
    }

    #[test]
    fn phi_pred_fixup_on_merge() {
        let mut f = parse_function(
            r#"define i32 @f(i1 %c) {
entry:
  br i1 %c, label %mid, label %other
mid:
  br label %tail
tail:
  br label %join
other:
  br label %join
join:
  %r = phi i32 [ 1, %tail ], [ 2, %other ]
  ret i32 %r
}"#,
        )
        .unwrap();
        SimplifyCfg.run(&mut f, &BugSet::none());
        let errs = verify_function(&f);
        assert!(errs.is_empty(), "{errs:?}\n{f}");
    }
}

//! Dead code elimination: removes side-effect-free instructions whose
//! results are unused, plus CFG-unreachable blocks.

use crate::bugs::BugSet;
use crate::pass::Pass;
use alive2_ir::cfg::Cfg;
use alive2_ir::function::Function;
use alive2_ir::instruction::InstOp;

/// The DCE pass.
#[derive(Debug, Default)]
pub struct Dce;

/// True if deleting an unused instance of this op is always sound.
fn is_pure(op: &InstOp) -> bool {
    matches!(
        op,
        InstOp::Bin { .. }
            | InstOp::FBin { .. }
            | InstOp::FNeg { .. }
            | InstOp::ICmp { .. }
            | InstOp::FCmp { .. }
            | InstOp::Select { .. }
            | InstOp::Freeze { .. }
            | InstOp::Cast { .. }
            | InstOp::Phi { .. }
            | InstOp::Gep { .. }
            | InstOp::ExtractElement { .. }
            | InstOp::InsertElement { .. }
            | InstOp::ShuffleVector { .. }
            | InstOp::ExtractValue { .. }
            | InstOp::InsertValue { .. }
            | InstOp::Alloca { .. }
    )
    // Note: `Bin` covers division, which may be UB — but removing an
    // *unused* division only removes behaviors, which refinement allows.
}

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&self, f: &mut Function, _bugs: &BugSet) -> bool {
        let mut changed = false;
        // Remove unreachable blocks first (and their φ entries elsewhere).
        let cfg = Cfg::new(f);
        let reach = cfg.reachable();
        if reach.iter().any(|r| !r) {
            let dead: Vec<String> = f
                .blocks
                .iter()
                .enumerate()
                .filter(|(i, _)| !reach[*i])
                .map(|(_, b)| b.name.clone())
                .collect();
            f.blocks.retain(|b| !dead.contains(&b.name));
            for b in &mut f.blocks {
                for inst in &mut b.insts {
                    if let InstOp::Phi { incoming, .. } = &mut inst.op {
                        incoming.retain(|(_, l)| !dead.contains(l));
                    }
                }
            }
            changed = true;
        }
        // Iteratively drop dead pure defs.
        loop {
            let mut dead_reg: Option<String> = None;
            'scan: for b in &f.blocks {
                for inst in &b.insts {
                    if let Some(r) = &inst.result {
                        if is_pure(&inst.op) && f.count_uses(r) == 0 {
                            dead_reg = Some(r.clone());
                            break 'scan;
                        }
                    }
                }
            }
            match dead_reg {
                Some(r) => {
                    for b in &mut f.blocks {
                        b.insts.retain(|i| i.result.as_deref() != Some(r.as_str()));
                    }
                    changed = true;
                }
                None => break,
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    #[test]
    fn removes_dead_chains() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x) {
entry:
  %a = add i32 %x, 1
  %b = mul i32 %a, 3
  %c = xor i32 %b, 7
  ret i32 %x
}"#,
        )
        .unwrap();
        assert!(Dce.run(&mut f, &BugSet::none()));
        assert_eq!(f.blocks[0].insts.len(), 1);
        assert!(verify_function(&f).is_empty());
    }

    #[test]
    fn keeps_stores_and_calls() {
        let mut f = parse_function(
            r#"declare i32 @g()
define void @f(ptr %p) {
entry:
  store i32 1, ptr %p
  %x = call i32 @g()
  ret void
}"#,
        )
        .unwrap();
        Dce.run(&mut f, &BugSet::none());
        let s = f.to_string();
        assert!(s.contains("store"));
        assert!(s.contains("call"));
    }

    #[test]
    fn removes_unreachable_blocks() {
        let mut f = parse_function(
            r#"define i32 @f() {
entry:
  ret i32 0
dead:
  %x = add i32 1, 2
  ret i32 %x
}"#,
        )
        .unwrap();
        assert!(Dce.run(&mut f, &BugSet::none()));
        assert_eq!(f.blocks.len(), 1);
        assert!(verify_function(&f).is_empty());
    }
}

//! A lightweight SROA/mem2reg: forwards stores to loads through
//! non-escaping `alloca` slots and deletes slots that become dead.

use crate::bugs::BugSet;
use crate::pass::Pass;
use alive2_ir::function::Function;
use alive2_ir::instruction::{InstOp, Operand};
use std::collections::HashSet;

/// The promotion pass.
#[derive(Debug, Default)]
pub struct Mem2Reg;

/// Allocas that are only ever used directly as the pointer operand of
/// loads and stores (never stored as a value, passed to a call, GEP'd, …).
fn promotable_allocas(f: &Function) -> HashSet<String> {
    let mut allocas: HashSet<String> = HashSet::new();
    for (_, inst) in f.insts() {
        if let (Some(r), InstOp::Alloca { .. }) = (&inst.result, &inst.op) {
            allocas.insert(r.clone());
        }
    }
    let mut escaped: HashSet<String> = HashSet::new();
    for (_, inst) in f.insts() {
        match &inst.op {
            InstOp::Load { ptr, .. } => {
                let _ = ptr; // pointer position: fine
            }
            InstOp::Store { val, ptr, .. } => {
                let _ = ptr; // pointer position: fine
                if let Some(r) = val.as_reg() {
                    if allocas.contains(r) {
                        escaped.insert(r.to_string()); // address stored
                    }
                }
            }
            other => {
                for op in other.operands() {
                    if let Some(r) = op.as_reg() {
                        if allocas.contains(r) {
                            escaped.insert(r.to_string());
                        }
                    }
                }
            }
        }
    }
    allocas.retain(|a| !escaped.contains(a));
    allocas
}

impl Pass for Mem2Reg {
    fn name(&self) -> &'static str {
        "mem2reg"
    }

    fn run(&self, f: &mut Function, _bugs: &BugSet) -> bool {
        let promotable = promotable_allocas(f);
        if promotable.is_empty() {
            return false;
        }
        let mut changed = false;
        // Per-block store-to-load forwarding.
        let mut forwards: Vec<(String, Operand)> = Vec::new();
        for b in &f.blocks {
            // slot -> last stored value in this block
            let mut last: std::collections::HashMap<&str, Operand> = Default::default();
            for inst in &b.insts {
                match &inst.op {
                    InstOp::Store { val, ptr, .. } => {
                        if let Some(p) = ptr.as_reg() {
                            if promotable.contains(p) {
                                last.insert(p, val.clone());
                            }
                        }
                    }
                    InstOp::Load { ptr, .. } => {
                        if let (Some(p), Some(r)) = (ptr.as_reg(), &inst.result) {
                            if let Some(v) = last.get(p) {
                                forwards.push((r.clone(), v.clone()));
                            }
                        }
                    }
                    InstOp::Call { .. } => {
                        // Calls cannot touch non-escaping slots; keep state.
                    }
                    _ => {}
                }
            }
        }
        for (reg, val) in forwards {
            f.replace_uses(&reg, &val);
            for b in &mut f.blocks {
                b.insts
                    .retain(|i| i.result.as_deref() != Some(reg.as_str()));
            }
            changed = true;
        }
        // Slots with no remaining loads: drop their stores and the alloca.
        for slot in &promotable {
            let still_loaded = f.insts().any(|(_, i)| {
                matches!(&i.op, InstOp::Load { ptr, .. } if ptr.as_reg() == Some(slot.as_str()))
            });
            if still_loaded {
                continue;
            }
            let before: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
            for b in &mut f.blocks {
                b.insts.retain(|i| {
                    !matches!(&i.op, InstOp::Store { ptr, .. } if ptr.as_reg() == Some(slot.as_str()))
                        && i.result.as_deref() != Some(slot.as_str())
                });
            }
            let after: usize = f.blocks.iter().map(|b| b.insts.len()).sum();
            if after != before {
                changed = true;
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use alive2_ir::parser::parse_function;
    use alive2_ir::verify::verify_function;

    #[test]
    fn forwards_store_to_load_and_removes_slot() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x) {
entry:
  %p = alloca i32
  store i32 %x, ptr %p
  %v = load i32, ptr %p
  ret i32 %v
}"#,
        )
        .unwrap();
        assert!(Mem2Reg.run(&mut f, &BugSet::none()));
        let s = f.to_string();
        assert!(s.contains("ret i32 %x"), "{s}");
        assert!(!s.contains("alloca"), "{s}");
        assert!(verify_function(&f).is_empty());
    }

    #[test]
    fn escaped_slot_is_untouched() {
        let mut f = parse_function(
            r#"declare void @g(ptr)
define i32 @f(i32 %x) {
entry:
  %p = alloca i32
  store i32 %x, ptr %p
  call void @g(ptr %p)
  %v = load i32, ptr %p
  ret i32 %v
}"#,
        )
        .unwrap();
        assert!(!Mem2Reg.run(&mut f, &BugSet::none()));
        assert!(f.to_string().contains("alloca"));
    }

    #[test]
    fn cross_block_loads_are_left_alone() {
        let mut f = parse_function(
            r#"define i32 @f(i32 %x, i1 %c) {
entry:
  %p = alloca i32
  store i32 %x, ptr %p
  br i1 %c, label %a, label %b
a:
  %v = load i32, ptr %p
  ret i32 %v
b:
  ret i32 0
}"#,
        )
        .unwrap();
        // The conservative single-block forwarding must not break this.
        Mem2Reg.run(&mut f, &BugSet::none());
        assert!(verify_function(&f).is_empty(), "{f}");
        assert!(f.to_string().contains("load"));
    }
}

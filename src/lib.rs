//! Facade crate re-exporting the Alive2-rs workspace.
//!
//! Alive2-rs is a Rust reproduction of "Alive2: Bounded Translation
//! Validation for LLVM" (PLDI 2021). See the individual crates:
//!
//! - [`smt`]: SMT substrate (terms, bit-blasting, CDCL SAT, CEGQI).
//! - [`ir`]: LLVM-style typed SSA IR with parser/printer and analyses.
//! - [`sema`]: encoding of IR semantics into SMT.
//! - [`core`]: the refinement checker (the paper's contribution).
//! - [`opt`]: the mini optimizer under test, with seedable historic bugs.
//! - [`testgen`]: unit-test corpus and synthetic application generator.

pub mod cli;

pub use alive2_core as core;
pub use alive2_ir as ir;
pub use alive2_opt as opt;
pub use alive2_sema as sema;
pub use alive2_smt as smt;
pub use alive2_testgen as testgen;

//! The `alive-tv` driver (§8.1), shared by the `alive2_tv` binary and
//! the `alive_tv` example.
//!
//! Takes two LLVM IR files and checks refinement between each function
//! present in both, printing Alive2-style reports. With no files, runs on
//! a built-in demo pair. Parsing goes through [`alive2_core::cli`], so
//! every shared flag works here — including `--procs N` process
//! supervision (this driver is also what `tests/supervise.rs` spawns as
//! both parent and worker child).
//!
//! Fault containment: a validator panic or a blown memory budget is
//! reported per function (CRASH / OOM) and the run continues; under
//! `--procs`, aborts and hangs are quarantined the same way. The exit
//! code reflects *refinement failures only* — crashes, OOMs, and
//! quarantined pairs leave it at 0 so one bad function cannot abort a
//! corpus sweep. The final stdout line is a machine-readable JSON summary
//! including the crash/oom columns and supervision counters.

use alive2_core::cli as core_cli;
use alive2_core::engine::Counts;
use alive2_core::obs;
use alive2_core::report::verdict_line;
use alive2_core::validator::Verdict;
use alive2_ir::parser::parse_module;
use alive2_sema::config::EncodeConfig;
use std::process::ExitCode;
use std::time::Instant;

const DEMO_SRC: &str = r#"
define i8 @twice(i8 %x) {
entry:
  %r = mul i8 %x, 2
  ret i8 %r
}

define i32 @clamp(i32 %x) {
entry:
  %c = icmp slt i32 %x, 0
  %r = select i1 %c, i32 0, i32 %x
  ret i32 %r
}
"#;

const DEMO_TGT: &str = r#"
define i8 @twice(i8 %x) {
entry:
  %r = shl i8 %x, 1
  ret i8 %r
}

define i32 @clamp(i32 %x) {
entry:
  %c = icmp sgt i32 %x, 0
  %r = select i1 %c, i32 %x, i32 0
  ret i32 %r
}
"#;

/// Runs the `alive-tv` workflow over `std::env::args`.
pub fn alive_tv_main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let obs_cfg = core_cli::obs_from_args(&args);
    core_cli::cache_from_args(&args);
    let engine = core_cli::engine_from_args(&args);
    let mut cfg = core_cli::config_from_args(&args, EncodeConfig::default());
    if let Some(unroll) = core_cli::flag_value(&args, "--unroll") {
        cfg.unroll_factor = unroll;
    }
    if let Some(timeout) = core_cli::flag_value(&args, "--timeout") {
        cfg.solver_timeout_ms = timeout;
    }
    let files = core_cli::positional_args(&args, &["--unroll", "--timeout"]);

    let (src_text, tgt_text) = match files.as_slice() {
        [] => {
            println!("(no files given; running the built-in demo pair)\n");
            (DEMO_SRC.to_string(), DEMO_TGT.to_string())
        }
        [s, t] => (
            std::fs::read_to_string(s).expect("cannot read source file"),
            std::fs::read_to_string(t).expect("cannot read target file"),
        ),
        _ => {
            eprintln!("usage: alive_tv <src.ll> <tgt.ll> [--unroll N] [--timeout MS] [--procs N]");
            return ExitCode::FAILURE;
        }
    };

    let started = Instant::now();
    let src = match parse_module(&src_text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("source: {e}");
            return ExitCode::FAILURE;
        }
    };
    let tgt = match parse_module(&tgt_text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("target: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut counts = Counts::default();
    // Worker children (`--worker-shard`) exit inside this call after
    // streaming their shard; everything below is parent-only.
    for outcome in engine.validate_modules_outcomes(&src, &tgt, &cfg) {
        println!(
            "----------------------------------------\n@{}:",
            outcome.name
        );
        counts.pairs += 1;
        counts.diff += 1;
        counts.record(&outcome.verdict);
        counts.stats.add_job(&outcome.stats);
        match outcome.verdict {
            Verdict::Incorrect(cex) => {
                for line in cex.to_string().lines() {
                    println!("  {line}");
                }
            }
            other => println!("  {}", verdict_line(&other)),
        }
    }
    engine.fold_supervision_into(&mut counts.stats);
    // Microsecond wall precision: the 5% busy-vs-wall CI bound is tighter
    // than millisecond rounding on a fast run.
    let wall_us = started.elapsed().as_micros() as u64;
    counts.millis = wall_us / 1_000;
    println!("----------------------------------------");
    if obs_cfg.stats {
        print!("{}", obs::report::render_phase_table(wall_us));
        print!("{}", obs::report::render_counters(&counts.stats));
        print!(
            "{}",
            obs::report::render_top_queries(&obs::profile::summary())
        );
    }
    if obs_cfg.profile.is_some() {
        match obs::profile::finish_sink(&counts.stats) {
            Ok(Some((path, lines))) => {
                eprintln!(
                    "profile: wrote {lines} query profiles to {}",
                    path.display()
                );
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: cannot finish profile sink: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &obs_cfg.trace {
        match obs::trace::write_chrome(path) {
            Ok(n) => eprintln!("trace: wrote {n} events to {path}"),
            Err(e) => {
                eprintln!("error: cannot write trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // The summary JSON stays the LAST stdout line (ci.sh tails it).
    println!(
        "{{\"name\":\"alive_tv\",\"pairs\":{},\"correct\":{},\"incorrect\":{},\
         \"timeout\":{},\"oom\":{},\"unsupported\":{},\"crash\":{},\
         \"stats\":{},\"phases\":{}}}",
        counts.pairs,
        counts.correct,
        counts.incorrect,
        counts.timeout,
        counts.oom,
        counts.unsupported,
        counts.crash,
        counts.stats.to_json_obj(),
        obs::report::phases_json_obj(wall_us)
    );
    // Contained faults (crash/oom, incl. quarantined pairs) do not fail
    // the run; genuine refinement violations do.
    if counts.incorrect > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// Runs the `alive2-serve` daemon over `std::env::args` (see DESIGN.md,
/// "Validation as a service").
///
/// Shares the whole CLI convention with `alive_tv` — `--jobs`,
/// `--deadline-ms`, `--unroll`, `--timeout`, `--mem-budget-mb`,
/// `--cache`, `--journal`/`--resume`, `--stats`/`--trace`/`--profile`,
/// `--no-incremental`/`--no-rewrite` — plus the daemon knobs:
/// `--listen ADDR` (length-prefixed Unix/TCP socket instead of stdio),
/// `--max-batch-pairs N`, `--max-queued-pairs N`.
///
/// `--journal` doubles as the request log: admitted batches are recorded
/// before execution, and `--resume` replays them (journaled outcomes
/// re-emit without solving) before serving new traffic. `--procs` is
/// rejected: a daemon re-invoking itself as worker shards would read the
/// protocol stream twice.
///
/// Exit code: 0 on clean shutdown (stdin EOF or a `shutdown` request);
/// refinement failures are per-response data, not a daemon failure.
pub fn alive2_serve_main() -> ExitCode {
    use alive2_core::serve;
    use std::sync::Arc;

    let args: Vec<String> = std::env::args().skip(1).collect();
    if core_cli::flag_value::<usize>(&args, "--procs").is_some_and(|p| p > 1) {
        eprintln!("error: alive2-serve does not support --procs (the daemon is the long-lived process; use --jobs for parallelism)");
        return ExitCode::FAILURE;
    }
    let obs_cfg = core_cli::obs_from_args(&args);
    core_cli::cache_from_args(&args);
    let engine = core_cli::engine_from_args(&args);
    let mut cfg = core_cli::config_from_args(&args, EncodeConfig::default());
    if let Some(unroll) = core_cli::flag_value(&args, "--unroll") {
        cfg.unroll_factor = unroll;
    }
    if let Some(timeout) = core_cli::flag_value(&args, "--timeout") {
        cfg.solver_timeout_ms = timeout;
    }
    let mut opts = serve::ServeOptions {
        mem_budget_mb: core_cli::flag_value(&args, "--mem-budget-mb"),
        ..serve::ServeOptions::default()
    };
    if let Some(n) = core_cli::flag_value(&args, "--max-batch-pairs") {
        opts.max_batch_pairs = n;
    }
    if let Some(n) = core_cli::flag_value(&args, "--max-queued-pairs") {
        opts.max_queued_pairs = n;
    }
    let daemon = Arc::new(serve::Daemon::new(engine, cfg, opts));

    // Crash recovery: replay the request log (in admission order) before
    // accepting new traffic. The engine's own `--resume` log answers the
    // already-journaled pairs, so this is cheap for completed work.
    if let Some(path) = core_cli::flag_value::<String>(&args, "--resume") {
        match serve::load_request_log(&path) {
            Ok(reqs) if !reqs.is_empty() => {
                let sink: Arc<dyn serve::ResponseSink> =
                    Arc::new(serve::LineSink::new(std::io::stdout()));
                let n = daemon.replay(&reqs, &sink);
                eprintln!("serve: replayed {n} journaled batches from {path}");
            }
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: cannot read request log `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let started = Instant::now();
    let counts = match core_cli::flag_value::<String>(&args, "--listen") {
        Some(addr) => match serve::serve_listen(&daemon, &addr) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: cannot listen on `{addr}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => serve::serve_stdio(&daemon),
    };

    let wall_us = started.elapsed().as_micros() as u64;
    if obs_cfg.stats {
        print!("{}", obs::report::render_phase_table(wall_us));
        print!("{}", obs::report::render_counters(&counts.stats));
        print!(
            "{}",
            obs::report::render_top_queries(&obs::profile::summary())
        );
    }
    if obs_cfg.profile.is_some() {
        match obs::profile::finish_sink(&counts.stats) {
            Ok(Some((path, lines))) => {
                eprintln!(
                    "profile: wrote {lines} query profiles to {}",
                    path.display()
                );
            }
            Ok(None) => {}
            Err(e) => {
                eprintln!("error: cannot finish profile sink: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Some(path) = &obs_cfg.trace {
        match obs::trace::write_chrome(path) {
            Ok(n) => eprintln!("trace: wrote {n} events to {path}"),
            Err(e) => {
                eprintln!("error: cannot write trace `{path}`: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Exit summary, same shape and last-stdout-line contract as the
    // other drivers (over the daemon's whole lifetime).
    println!(
        "{{\"name\":\"alive2_serve\",\"pairs\":{},\"correct\":{},\"incorrect\":{},\
         \"timeout\":{},\"oom\":{},\"unsupported\":{},\"crash\":{},\
         \"stats\":{},\"phases\":{}}}",
        counts.pairs,
        counts.correct,
        counts.incorrect,
        counts.timeout,
        counts.oom,
        counts.unsupported,
        counts.crash,
        counts.stats.to_json_obj(),
        obs::report::phases_json_obj(wall_us)
    );
    ExitCode::SUCCESS
}

//! `alive2_tv`: the installable `alive-tv` binary (§8.1).
//!
//! Same driver as the `alive_tv` example (see [`alive2::cli`]); shipping
//! it as a real `[[bin]]` gives the supervision integration tests a
//! `CARGO_BIN_EXE_alive2_tv` path to spawn as parent and worker child.

use std::process::ExitCode;

fn main() -> ExitCode {
    alive2::cli::alive_tv_main()
}

//! The `alive2-serve` binary: a long-running validation daemon speaking
//! JSON-lines over stdin/stdout (or length-prefixed frames behind
//! `--listen`). See [`alive2::cli::alive2_serve_main`] and DESIGN.md,
//! "Validation as a service".

use std::process::ExitCode;

fn main() -> ExitCode {
    alive2::cli::alive2_serve_main()
}

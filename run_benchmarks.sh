#!/bin/sh
# Regenerates every table/figure of the paper evaluation plus the criterion
# micro-benchmarks, capturing everything into bench_output.txt.
set -e
cd "$(dirname "$0")"
{
  echo "==================================================================="
  echo "Criterion micro-benchmarks (cargo bench --workspace)"
  echo "==================================================================="
  cargo bench --workspace 2>&1
  for bin in fig6_unroll fig7_apps fig8_timeout table_bugs known_bugs; do
    echo
    echo "==================================================================="
    echo "Harness: $bin"
    echo "==================================================================="
    if [ "$bin" = fig7_apps ]; then
      cargo run --release -q -p alive2-bench --bin "$bin" -- --scale 0.25 2>&1 || true
    else
      cargo run --release -q -p alive2-bench --bin "$bin" 2>&1 || true
    fi
  done
} | tee bench_output.txt

#!/bin/sh
# Regenerates every table/figure of the paper evaluation plus the in-tree
# micro-benchmarks, capturing everything into bench_output.txt.
#
# The figure harnesses accept --jobs N (worker threads, default: all
# cores) and --deadline-ms MS (per-job wall-clock cap); the micro timer
# emits one JSON line per bench ({"bench":...,"median_ns":...,...}).
#
# Pass --stats to also print each harness's per-phase timing breakdown
# and counter totals (and fill the summary JSON's stats/phases objects).
set -e
cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"
STATS=""
for arg in "$@"; do
  [ "$arg" = "--stats" ] && STATS="--stats"
done
{
  echo "==================================================================="
  echo "In-tree micro-benchmarks (alive2-bench --bin micro)"
  echo "==================================================================="
  cargo run --release -q -p alive2-bench --bin micro 2>&1
  for bin in fig6_unroll fig7_apps fig8_timeout table_bugs known_bugs; do
    echo
    echo "==================================================================="
    echo "Harness: $bin (--jobs $JOBS)"
    echo "==================================================================="
    if [ "$bin" = fig7_apps ]; then
      cargo run --release -q -p alive2-bench --bin "$bin" -- --scale 0.25 --jobs "$JOBS" $STATS 2>&1 || true
    else
      cargo run --release -q -p alive2-bench --bin "$bin" -- --jobs "$JOBS" $STATS 2>&1 || true
    fi
  done
} | tee bench_output.txt

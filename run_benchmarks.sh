#!/bin/sh
# Regenerates every table/figure of the paper evaluation plus the in-tree
# micro-benchmarks, capturing everything into bench_output.txt.
#
# The figure harnesses accept --jobs N (worker threads, default: all
# cores) and --deadline-ms MS (per-job wall-clock cap); the micro timer
# emits one JSON line per bench ({"bench":...,"median_ns":...,...}).
#
# Pass --stats to also print each harness's per-phase timing breakdown
# and counter totals (and fill the summary JSON's stats/phases objects).
#
# Pass --cache to measure the persistent query cache instead: the
# known_bugs harness runs twice against a fresh cache directory (cold,
# then warm) and BENCH_pr5.json records per-run live SAT solves,
# cache traffic, and wall time. The same mode then measures incremental
# solving into BENCH_pr6.json: a cold incremental run, a warm incremental
# rerun, and a cold --no-incremental baseline, each with one-shot and
# live-solver solve counts and wall time. BENCH_pr8.json then measures
# term rewriting: a cold default run vs. a cold --no-rewrite baseline,
# with discharge counts, solve counts, wall time, and a verdict-parity
# flag.
set -e
cd "$(dirname "$0")"
JOBS="${JOBS:-$(nproc 2>/dev/null || echo 1)}"
STATS=""
CACHE=""
for arg in "$@"; do
  [ "$arg" = "--stats" ] && STATS="--stats"
  [ "$arg" = "--cache" ] && CACHE=1
done

if [ -n "$CACHE" ]; then
  CDIR=$(mktemp -d)
  trap 'rm -rf "$CDIR"' EXIT
  cargo build --release -q -p alive2-bench --bin known_bugs
  run_pass() { # $1 = label, $2... = extra known_bugs flags
    label="$1"; shift
    start_ms=$(date +%s%3N)
    out=$(cargo run --release -q -p alive2-bench --bin known_bugs -- \
          --jobs "$JOBS" "$@" 2>/dev/null \
          | grep '"name":"known_bugs"' | tail -n 1)
    end_ms=$(date +%s%3N)
    printf '"%s":{"wall_ms":%s,"sat_solves":%s,"incremental_solves":%s,"cache_hits":%s,"cache_misses":%s,"rewrite_discharged":%s,"rewrite_residue":%s,"summary":%s}' \
      "$label" "$((end_ms - start_ms))" \
      "$(printf '%s' "$out" | grep -o '"sat_solves":[0-9]*' | cut -d: -f2)" \
      "$(printf '%s' "$out" | grep -o '"incremental_solves":[0-9]*' | cut -d: -f2)" \
      "$(printf '%s' "$out" | grep -o '"cache_hits":[0-9]*' | cut -d: -f2)" \
      "$(printf '%s' "$out" | grep -o '"cache_misses":[0-9]*' | cut -d: -f2)" \
      "$(printf '%s' "$out" | grep -o '"rewrite_discharged":[0-9]*' | cut -d: -f2)" \
      "$(printf '%s' "$out" | grep -o '"rewrite_residue":[0-9]*' | cut -d: -f2)" \
      "$out"
  }
  # BENCH_pr5: the query-cache experiment, unchanged — but run one-shot
  # (--no-incremental) so its cold/warm sat_solves keep their original
  # "every query solves fresh" meaning.
  { printf '{'; run_pass cold --cache "$CDIR" --no-incremental
    printf ','; run_pass warm --cache "$CDIR" --no-incremental
    printf '}\n'; } > BENCH_pr5.json
  cat BENCH_pr5.json
  # BENCH_pr6: the incremental-solving experiment. `cold` runs the
  # persistent candidate solver against a fresh cache; `warm` reruns on
  # the populated cache; `fresh_cold` is the --no-incremental baseline on
  # its own fresh cache (cold-vs-cold comparison with `cold`).
  IDIR=$(mktemp -d)
  FDIR=$(mktemp -d)
  trap 'rm -rf "$CDIR" "$IDIR" "$FDIR"' EXIT
  { printf '{'; run_pass cold --cache "$IDIR"
    printf ','; run_pass warm --cache "$IDIR"
    printf ','; run_pass fresh_cold --cache "$FDIR" --no-incremental
    printf '}\n'; } > BENCH_pr6.json
  cat BENCH_pr6.json
  # BENCH_pr7: the process-supervision experiment. The same corpus run
  # single-process and sharded across 4 supervised worker processes
  # (--procs 4), with throughput (pairs/sec over the 36-pair corpus) and
  # a verdict-parity flag — the correctness anchor: on a clean run,
  # supervision must not change a single verdict.
  R1=$(run_pass procs1)
  R4=$(run_pass procs4 --procs 4)
  pairsec() { # $1 = one run_pass record
    wall=$(printf '%s' "$1" | grep -o '"wall_ms":[0-9]*' | head -n 1 | cut -d: -f2)
    pairs=$(printf '%s' "$1" | grep -o '"pairs":[0-9]*' | head -n 1 | cut -d: -f2)
    awk "BEGIN { printf \"%.2f\", $wall ? $pairs * 1000 / $wall : 0 }"
  }
  sup_verdicts() { printf '%s' "$1" | sed 's/.*"summary"://; s/,"stats":.*$/}/'; }
  if [ "$(sup_verdicts "$R1")" = "$(sup_verdicts "$R4")" ]; then
    PARITY=true
  else
    PARITY=false
  fi
  printf '{%s,%s,"pairs_per_sec":{"procs1":%s,"procs4":%s},"verdict_parity":%s}\n' \
    "$R1" "$R4" "$(pairsec "$R1")" "$(pairsec "$R4")" "$PARITY" > BENCH_pr7.json
  cat BENCH_pr7.json
  # BENCH_pr8: the term-rewriting experiment. `rewrite_cold` runs the
  # default (rewriter on) against a fresh cache; `norewrite_cold` is the
  # --no-rewrite baseline on its own fresh cache (cold-vs-cold), with a
  # verdict-parity flag — rewriting must change solve counts, never
  # verdicts.
  RWDIR=$(mktemp -d)
  NRDIR=$(mktemp -d)
  trap 'rm -rf "$CDIR" "$IDIR" "$FDIR" "$RWDIR" "$NRDIR"' EXIT
  RW=$(run_pass rewrite_cold --cache "$RWDIR")
  NR=$(run_pass norewrite_cold --cache "$NRDIR" --no-rewrite)
  if [ "$(sup_verdicts "$RW")" = "$(sup_verdicts "$NR")" ]; then
    RWPARITY=true
  else
    RWPARITY=false
  fi
  printf '{%s,%s,"verdict_parity":%s}\n' "$RW" "$NR" "$RWPARITY" > BENCH_pr8.json
  cat BENCH_pr8.json
  # BENCH_pr9: the profiling-overhead experiment. `base` is a plain run;
  # `profiled` re-runs the identical corpus with the --profile JSON-lines
  # sink armed. Query profiles are recorded unconditionally (the ring is
  # always live), so the delta isolates the cost of streaming them to
  # disk — the acceptance bar is <= 5% wall overhead with verdict parity.
  PDIR=$(mktemp -d)
  trap 'rm -rf "$CDIR" "$IDIR" "$FDIR" "$RWDIR" "$NRDIR" "$PDIR"' EXIT
  PB=$(run_pass base)
  PP=$(run_pass profiled --profile "$PDIR/kb.profile.jsonl")
  if [ "$(sup_verdicts "$PB")" = "$(sup_verdicts "$PP")" ]; then
    PPARITY=true
  else
    PPARITY=false
  fi
  pwall() { printf '%s' "$1" | grep -o '"wall_ms":[0-9]*' | head -n 1 | cut -d: -f2; }
  # Clamped at 0: the in-tree JSON codec has no negative numbers, and a
  # faster profiled run is just timing noise anyway.
  OVERHEAD=$(awk "BEGIN { b=$(pwall "$PB"); p=$(pwall "$PP");
                          d = b ? (p - b) * 100 / b : 0;
                          if (d < 0) d = 0; printf \"%d\", d }")
  printf '{%s,%s,"profile_lines":%s,"overhead_pct":%s,"verdict_parity":%s}\n' \
    "$PB" "$PP" "$(wc -l < "$PDIR/kb.profile.jsonl")" "$OVERHEAD" "$PPARITY" \
    > BENCH_pr9.json
  cat BENCH_pr9.json
  # BENCH_pr10: the validation-as-a-service experiment. A cold one-shot
  # CLI run (spawn known_bugs: process startup + fresh query cache) vs.
  # a warm `alive2-serve` daemon re-validating the same 36-pair corpus
  # as its second batch. Both sides run --jobs 1 --no-incremental so the
  # delta is warm state, not thread count, and every discharge flows
  # through the cache-eligible one-shot solver path. serve_bench prints
  # the whole artifact: per-pass wall/solve meters, pairs/sec, the
  # warm/cold live-solve split, and the acceptance flags (verdict
  # parity, warm cache hits, memory under the 512 MiB budget).
  cargo build --release -q --bin alive2-serve
  cargo build --release -q -p alive2-bench --bin serve_bench
  ./target/release/serve_bench --jobs 1 > BENCH_pr10.json
  cat BENCH_pr10.json
  # Cross-run triage gates: each new artifact must not regress the
  # previous PR's verdict columns (labels are disjoint across PRs, so
  # the report falls back to per-harness verdict-signature parity).
  cargo build --release -q -p alive2-bench --bin alive2-report
  ./target/release/alive2-report BENCH_pr8.json BENCH_pr9.json
  ./target/release/alive2-report BENCH_pr9.json BENCH_pr10.json
  exit 0
fi
{
  echo "==================================================================="
  echo "In-tree micro-benchmarks (alive2-bench --bin micro)"
  echo "==================================================================="
  cargo run --release -q -p alive2-bench --bin micro 2>&1
  for bin in fig6_unroll fig7_apps fig8_timeout table_bugs known_bugs; do
    echo
    echo "==================================================================="
    echo "Harness: $bin (--jobs $JOBS)"
    echo "==================================================================="
    if [ "$bin" = fig7_apps ]; then
      cargo run --release -q -p alive2-bench --bin "$bin" -- --scale 0.25 --jobs "$JOBS" $STATS 2>&1 || true
    else
      cargo run --release -q -p alive2-bench --bin "$bin" -- --jobs "$JOBS" $STATS 2>&1 || true
    fi
  done
} | tee bench_output.txt
